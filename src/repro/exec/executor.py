"""Executor — batch RunSpec submission with dedup, caching, and workers.

Modules declare their cells up front as :class:`RunSpec` lists, submit a
batch, and fold the outcomes. The executor deduplicates identical specs
(within a batch and across batches via a session memo), serves hits from
the :class:`ResultStore` when one is attached, and fans the remainder out
over a ``ProcessPoolExecutor`` (``jobs > 1``) or runs them inline
(``jobs=1`` — fully in-process for debugging).

A failed cell never kills the batch: its outcome carries the worker
traceback, and :meth:`RunOutcome.require`/:meth:`Executor.run_results`
raise a labelled :class:`ExecError` only when a consumer actually needs
the missing result.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable

from repro.exec.spec import RunSpec
from repro.exec.store import ResultStore
from repro.exec.worker import execute_spec, seed_workload
from repro.sim.metrics import RunResult
from repro.workloads.suite import Workload

#: Environment override for the default executor's job count.
JOBS_ENV = "REPRO_JOBS"


class ExecError(RuntimeError):
    """A consumer needed a cell that failed; message carries spec + traceback."""


def resolve_jobs(jobs: int | str) -> int:
    if jobs == "auto":
        return os.cpu_count() or 1
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError("jobs must be >= 1 (or 'auto')")
    return jobs


def _safe_execute(spec: RunSpec) -> tuple[bool, Any]:
    """Pool-safe wrapper: (True, payload) or (False, formatted traceback)."""
    try:
        return True, execute_spec(spec)
    except Exception:
        return False, traceback.format_exc()


@dataclass
class ExecStats:
    """Cumulative pipeline accounting across an executor's lifetime."""

    requested: int = 0
    computed: int = 0
    cache_hits: int = 0
    failed: int = 0

    @property
    def deduped(self) -> int:
        """Cells served by in-session dedup (batch + memo), not recomputed."""
        return self.requested - self.computed - self.cache_hits - self.failed

    def summary(self, jobs: int) -> str:
        return (
            f"Run pipeline: {self.requested} cells requested, "
            f"{self.computed} computed, {self.deduped} deduplicated, "
            f"{self.cache_hits} served from cache, {self.failed} failed "
            f"(jobs={jobs})"
        )


class RunOutcome:
    """One spec's result: payload (live or cached) or a captured failure."""

    __slots__ = ("spec", "payload", "cached", "error", "_result")

    def __init__(self, spec: RunSpec, payload: dict[str, Any] | None,
                 cached: bool = False, error: str | None = None) -> None:
        self.spec = spec
        self.payload = payload
        self.cached = cached
        self.error = error
        self._result: RunResult | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def result(self) -> RunResult | None:
        """The reconstructed RunResult (op="run" payloads), lazily built."""
        if self._result is None and self.payload is not None \
                and "result" in self.payload:
            self._result = RunResult.from_dict(self.payload["result"])
        return self._result

    @property
    def data(self) -> dict[str, Any] | None:
        """Raw data of non-"run" ops (e.g. dynamic_mix)."""
        return None if self.payload is None else self.payload.get("data")

    @property
    def extras(self) -> dict[str, Any]:
        """Worker-side artifacts requested via spec.collect."""
        return (self.payload or {}).get("extras") or {}

    def check(self) -> "RunOutcome":
        """Raise the captured failure, if any; returns self for chaining."""
        if self.error is not None:
            raise ExecError(
                f"cell {self.spec.label()} failed\n"
                f"spec: {self.spec.canonical()}\n{self.error}"
            )
        return self

    def require(self) -> RunResult:
        result = self.check().result
        assert result is not None, "require() is for op='run' specs; use check().data"
        return result


class Executor:
    """Runs RunSpec batches; owns the worker pool, memo, and store."""

    def __init__(self, jobs: int | str = 1,
                 store: ResultStore | None = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self.store = store
        self.stats = ExecStats()
        self._memo: dict[RunSpec, RunOutcome] = {}
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    def run(self, specs: Iterable[RunSpec]) -> list[RunOutcome]:
        """Execute a batch; outcomes align 1:1 with the submitted specs."""
        specs = list(specs)
        self.stats.requested += len(specs)
        outcomes: dict[RunSpec, RunOutcome] = {}
        pending: list[RunSpec] = []
        queued: set[RunSpec] = set()
        for spec in specs:
            if spec in outcomes or spec in queued:
                continue
            memoized = self._memo.get(spec)
            if memoized is not None:
                outcomes[spec] = memoized
                continue
            if self.store is not None:
                payload = self.store.get(spec)
                if payload is not None:
                    self.stats.cache_hits += 1
                    outcomes[spec] = RunOutcome(spec, payload, cached=True)
                    continue
            pending.append(spec)
            queued.add(spec)

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                raws = [_safe_execute(spec) for spec in pending]
            else:
                raws = list(self._ensure_pool().map(_safe_execute, pending))
            for spec, (ok, value) in zip(pending, raws):
                if ok:
                    self.stats.computed += 1
                    outcomes[spec] = RunOutcome(spec, value)
                    if self.store is not None:
                        self.store.put(spec, value)
                else:
                    self.stats.failed += 1
                    outcomes[spec] = RunOutcome(spec, None, error=value)

        for spec, outcome in outcomes.items():
            if outcome.ok:
                self._memo[spec] = outcome
        return [outcomes[spec] for spec in specs]

    def run_results(self, specs: Iterable[RunSpec]) -> list[RunResult]:
        """Run a batch and demand every cell; raises ExecError on failure."""
        return [outcome.require() for outcome in self.run(specs)]

    def seed_workloads(
        self, workloads: Iterable[Workload] | dict[str, Workload] | None
    ) -> None:
        """Donate prebuilt registry workloads to the worker memo.

        Serial runs reuse them directly; a forked pool inherits them
        copy-on-write (the pool is created lazily, after seeding).
        """
        if workloads is None:
            return
        if isinstance(workloads, dict):
            workloads = workloads.values()
        for workload in workloads:
            seed_workload(workload)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            kwargs: dict[str, Any] = {}
            try:
                import multiprocessing

                kwargs["mp_context"] = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                pass
            self._pool = ProcessPoolExecutor(max_workers=self.jobs, **kwargs)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


_DEFAULT: Executor | None = None


def default_executor() -> Executor:
    """Shared in-process executor for library/test use: no store, and
    ``jobs`` from ``$REPRO_JOBS`` (default 1), so results never depend on
    ambient cache state unless a caller opts in via an explicit executor.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Executor(jobs=os.environ.get(JOBS_ENV, 1) or 1)
    return _DEFAULT
