"""Timed kernels over the simulator's measured hot paths.

Each kernel is a ``(setup, run)`` pair: ``setup(scale)`` builds the
inputs once (index structures, synthetic traces, workloads) outside the
timed region; ``run(state)`` executes the hot path and returns a
deterministic checksum of its functional output. The checksum is part of
the recorded baseline: a behaviour change shows up as a digest mismatch
even when the timing looks plausible.

The profiled hot paths these kernels pin down (see docs/performance.md):

* ``engine_loop``   — :meth:`Engine.run` heap scheduling over mixed
  DRAM/SRAM/compute access traces.
* ``dram_access``   — :meth:`DRAM.access` bank/row timing arithmetic.
* ``ix_probe_fill`` — :class:`IXCache` insert + probe (set placement and
  range-tag match).
* ``walk_gen``      — B+tree ``walk()`` plus the per-node
  :func:`_node_blocks` footprint used by every memory system.
* ``simulate_e2e``  — the full ``build_memsys`` + :func:`simulate` cell
  the bench matrix is made of (scan workload, METAL system), run on the
  vectorized backend (SoA storage, bucket engine, batched walks). Its
  checksum is the scalar path's digest: drift means the byte-identity
  gate broke.
* ``bucket_drain``      — the calendar-queue engine over the same traces
  ``engine_loop`` times (same checksum: the engines are equivalent).
* ``batched_walk_gen``  — ``searchsorted`` chunk resolution through the
  SoA level arrays plus the vectorized block-count baseline.
* ``vector_dram_decomp`` — array block->(bank,row) decomposition.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Any, Callable

from repro.indexes.bplustree import BPlusTree
from repro.params import BLOCK_SIZE

SetupFn = Callable[[float], Any]
RunFn = Callable[[Any], int | str]


def _checksum_json(data: Any) -> str:
    """SHA-256 over canonical JSON — the ResultStore digest convention."""
    text = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


# --------------------------------------------------------------------- #
# engine_loop
# --------------------------------------------------------------------- #


def _setup_engine(scale: float) -> Any:
    from repro.sim.engine import Access, WalkTrace

    rng = random.Random(1234)
    num_walks = max(64, int(6_000 * scale * 20))
    traces = []
    for walk in range(num_walks):
        accesses = []
        for _ in range(6):
            roll = rng.random()
            if roll < 0.5:
                accesses.append(
                    Access("dram", rng.randrange(0, 1 << 24) * BLOCK_SIZE,
                           BLOCK_SIZE)
                )
            elif roll < 0.8:
                accesses.append(
                    Access("sram", cycles=4, port=rng.randrange(0, 1 << 12))
                )
            else:
                accesses.append(Access("compute", cycles=rng.randrange(1, 8)))
        traces.append(WalkTrace(walk, accesses))
    return traces


def _run_engine(traces: Any) -> int:
    from repro.sim.engine import Engine

    engine = Engine()
    result = engine.run(traces, record_latencies=True)
    return (result.makespan * 1_000_003
            + result.total_walk_cycles
            + sum(result.walk_latencies)) % (1 << 61)


# --------------------------------------------------------------------- #
# dram_access
# --------------------------------------------------------------------- #


def _setup_dram(scale: float) -> Any:
    rng = random.Random(99)
    n = max(1_000, int(120_000 * scale * 20))
    addresses = []
    base = 0
    for _ in range(n):
        if rng.random() < 0.6:
            base += BLOCK_SIZE  # row-hit-friendly stride
        else:
            base = rng.randrange(0, 1 << 26) * BLOCK_SIZE
        addresses.append(base)
    return addresses


def _run_dram(addresses: Any) -> int:
    from repro.mem.dram import DRAM

    dram = DRAM()
    access = dram.access
    now = 0
    acc = 0
    for i, address in enumerate(addresses):
        done = access(address, now, write=(i & 7) == 0)
        acc += done
        if (i & 3) == 0:
            now = done
    stats = dram.stats
    return (acc + stats.row_hits * 7 + stats.row_misses * 13
            + len(stats.touched_blocks)) % (1 << 61)


# --------------------------------------------------------------------- #
# ix_probe_fill
# --------------------------------------------------------------------- #


def _setup_ix(scale: float) -> Any:
    num_keys = max(512, int(4_000 * scale * 20))
    tree = BPlusTree.bulk_load([(k, k) for k in range(num_keys)], fanout=16)
    nodes = list(tree.nodes())
    rng = random.Random(7)
    probes = [rng.randrange(0, num_keys) for _ in range(num_keys * 2)]
    return nodes, probes


def _run_ix(state: Any) -> int:
    from repro.core.ix_cache import IXCache

    nodes, probes = state
    cache = IXCache(key_block_bits=6)
    insert = cache.insert
    probe = cache.probe
    for node in nodes:
        insert(node)
    hits = 0
    level_acc = 0
    for key in probes:
        node = probe(key)
        if node is not None:
            hits += 1
            level_acc += node.level
    stats = cache.stats
    return (hits * 31 + level_acc * 17 + stats.evictions * 7
            + stats.insertions * 3 + len(cache)) % (1 << 61)


# --------------------------------------------------------------------- #
# walk_gen
# --------------------------------------------------------------------- #


def _setup_walks(scale: float) -> Any:
    num_keys = max(2_048, int(20_000 * scale * 20))
    tree = BPlusTree.bulk_load(
        [(k, k * 3) for k in range(num_keys)], fanout=12
    )
    rng = random.Random(42)
    keys = [rng.randrange(0, num_keys) for _ in range(num_keys)]
    return tree, keys


def _run_walks(state: Any) -> int:
    from repro.sim.memsys import _node_blocks

    tree, keys = state
    walk = tree.walk
    acc = 0
    for key in keys:
        for node in walk(key):
            blocks = _node_blocks(node)
            acc += len(blocks) + blocks[0]
    return acc % (1 << 61)


# --------------------------------------------------------------------- #
# bucket_drain
# --------------------------------------------------------------------- #


def _run_bucket(traces: Any) -> int:
    from repro.params import SimParams
    from repro.sim.engine import Engine

    engine = Engine(SimParams(engine="bucket"))
    result = engine.run(traces, record_latencies=True)
    return (result.makespan * 1_000_003
            + result.total_walk_cycles
            + sum(result.walk_latencies)) % (1 << 61)


# --------------------------------------------------------------------- #
# batched_walk_gen
# --------------------------------------------------------------------- #


def _setup_batched_walks(scale: float) -> Any:
    import numpy as np

    from repro.indexes.soa import SoABPlusTree

    num_keys = max(2_048, int(20_000 * scale * 20))
    tree = SoABPlusTree(np.arange(num_keys, dtype=np.int64), fanout=12)
    rng = random.Random(42)
    keys = [rng.randrange(0, num_keys) for _ in range(num_keys)]
    return tree, keys


def _run_batched_walks(state: Any) -> int:
    import numpy as np

    from repro.sim.batch import BatchWalkPlanner
    from repro.workloads.stream import chunked

    tree, keys = state
    planner = BatchWalkPlanner(tree)
    acc = 0
    for part in chunked(keys, 512):
        rows = planner.positions(np.asarray(part, dtype=np.int64))
        acc += int(rows.sum()) * 3 + planner.baseline(rows)
    return acc % (1 << 61)


# --------------------------------------------------------------------- #
# vector_dram_decomp
# --------------------------------------------------------------------- #


def _setup_vector_dram(scale: float) -> Any:
    import numpy as np

    return np.asarray(_setup_dram(scale), dtype=np.int64)


def _run_vector_dram(addresses: Any) -> int:
    from repro.mem.dram import DRAM

    dram = DRAM()
    banks, rows = dram.decompose(addresses)
    return int(int(banks.sum()) * 7 + int(rows.sum()) * 13
               + int(banks[-1]) + int(rows[-1])) % (1 << 61)


# --------------------------------------------------------------------- #
# simulate_e2e
# --------------------------------------------------------------------- #


def _setup_simulate(scale: float) -> Any:
    from repro.workloads.suite import build_workload

    return build_workload("scan", scale=scale, backend="soa")


def _run_simulate(workload: Any) -> str:
    from dataclasses import replace

    from repro.bench.runner import run_workload

    sim = replace(workload.config.sim_params(), engine="bucket",
                  walk_batch=256)
    result = run_workload(workload, "metal", sim=sim)
    return _checksum_json(result.to_dict())


#: name -> (setup, run, description)
KERNELS: dict[str, tuple[SetupFn, RunFn, str]] = {
    "engine_loop": (_setup_engine, _run_engine,
                    "Engine.run heap loop over synthetic mixed traces"),
    "dram_access": (_setup_dram, _run_dram,
                    "DRAM.access bank/row timing arithmetic"),
    "ix_probe_fill": (_setup_ix, _run_ix,
                      "IXCache insert + probe (placement and range match)"),
    "walk_gen": (_setup_walks, _run_walks,
                 "B+tree walk() + per-node _node_blocks footprint"),
    "bucket_drain": (_setup_engine, _run_bucket,
                     "calendar-queue engine over the engine_loop traces"),
    "batched_walk_gen": (_setup_batched_walks, _run_batched_walks,
                         "searchsorted chunk walks + vectorized baseline"),
    "vector_dram_decomp": (_setup_vector_dram, _run_vector_dram,
                           "array block->(bank,row) DRAM decomposition"),
    "simulate_e2e": (_setup_simulate, _run_simulate,
                     "build_memsys + simulate for scan/metal on the "
                     "vectorized backend (to_dict digest)"),
}


def kernel_names() -> tuple[str, ...]:
    return tuple(KERNELS)
