"""Warmup/repeat/median timing harness over the perf kernels.

A suite run produces a JSON-serializable :class:`PerfReport`:

* per-kernel wall-clock samples with the median highlighted, and
* per-kernel *checksums* — deterministic digests of the kernel's
  functional output.

Baseline comparison (:func:`compare_reports`) is two-tier by design:
checksum mismatches are hard failures (the hot path changed behaviour),
while timing ratios are informational (shared CI runners make wall-clock
numbers noisy). This mirrors the repo's byte-identical equivalence rule
for performance PRs (docs/performance.md).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.perf.kernels import KERNELS

#: Report schema version (bump on incompatible layout changes).
PERF_SCHEMA = 1
#: Default workload scale for the suite (small enough for CI smoke runs,
#: large enough that the end-to-end kernel exercises real cache churn).
DEFAULT_SCALE = 0.05

#: Exit codes shared with the CLI subcommand.
EXIT_BASELINE_MISSING = 2
EXIT_CHECKSUM_MISMATCH = 3


@dataclass
class KernelResult:
    """Timing samples + functional checksum for one kernel."""

    name: str
    description: str
    runs_s: list[float] = field(default_factory=list)
    checksum: str = ""

    @property
    def median_s(self) -> float:
        ordered = sorted(self.runs_s)
        n = len(ordered)
        if n == 0:
            return 0.0
        mid = n // 2
        if n % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2

    @property
    def min_s(self) -> float:
        return min(self.runs_s) if self.runs_s else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "description": self.description,
            "median_s": self.median_s,
            "min_s": self.min_s,
            "runs_s": list(self.runs_s),
            "checksum": self.checksum,
        }


@dataclass
class PerfReport:
    """One full suite run, ready to serialize or compare."""

    scale: float
    repeat: int
    warmup: int
    kernels: dict[str, KernelResult] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        import numpy

        return {
            "schema": PERF_SCHEMA,
            "scale": self.scale,
            "repeat": self.repeat,
            "warmup": self.warmup,
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "cpu_count": os.cpu_count(),
            "kernels": {name: k.to_dict() for name, k in self.kernels.items()},
        }

    def write(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.to_dict(), f, indent=2, sort_keys=True)
            f.write("\n")


def run_suite(
    names: tuple[str, ...] | None = None,
    scale: float = DEFAULT_SCALE,
    repeat: int = 5,
    warmup: int = 1,
    progress: bool = False,
) -> PerfReport:
    """Time each kernel: one setup, ``warmup`` discarded runs, ``repeat``
    measured runs. Checksums must be identical across every run of a
    kernel — a drifting checksum means the kernel (or the simulator
    underneath it) is nondeterministic, which is itself a bug.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    report = PerfReport(scale=scale, repeat=repeat, warmup=warmup)
    for name in names or tuple(KERNELS):
        try:
            setup, run, description = KERNELS[name]
        except KeyError:
            raise ValueError(
                f"unknown kernel {name!r} (choose from {', '.join(KERNELS)})"
            ) from None
        if progress:
            print(f"  {name}: setup...", file=sys.stderr, flush=True)
        state = setup(scale)
        result = KernelResult(name=name, description=description)
        for i in range(warmup + repeat):
            started = time.perf_counter()
            checksum = str(run(state))
            elapsed = time.perf_counter() - started
            if result.checksum and checksum != result.checksum:
                raise AssertionError(
                    f"kernel {name} is nondeterministic: run {i} produced "
                    f"checksum {checksum} after {result.checksum}"
                )
            result.checksum = checksum
            if i >= warmup:
                result.runs_s.append(elapsed)
        report.kernels[name] = result
        if progress:
            print(f"  {name}: median {result.median_s * 1e3:.1f} ms",
                  file=sys.stderr, flush=True)
    return report


def format_report(report: PerfReport) -> str:
    from repro.bench.format import render_table

    rows = []
    for name, kernel in report.kernels.items():
        rows.append([
            name,
            f"{kernel.median_s * 1e3:.2f}",
            f"{kernel.min_s * 1e3:.2f}",
            len(kernel.runs_s),
            kernel.checksum[:12],
        ])
    return render_table(
        ["kernel", "median ms", "min ms", "runs", "checksum"],
        rows,
        f"Microbenchmarks at scale {report.scale:g} "
        f"({report.warmup} warmup + {report.repeat} timed)",
    )


def compare_reports(
    baseline: dict[str, Any], report: PerfReport,
    only: Iterable[str] | None = None,
) -> tuple[dict[str, float], list[str]]:
    """Compare a run against a stored baseline report.

    Returns ``(speedups, mismatches)``: per-kernel speedup ratios
    (baseline median / current median; >1 means this tree is faster) and
    the hard failures — checksum mismatches or kernels missing from the
    run. Ratios are only computed for kernels whose recorded scale
    matches; a scale mismatch voids the whole comparison. ``only``
    restricts the gate to an explicit kernel subset (a ``--kernels``
    run), so the baseline's other kernels are not reported missing.
    """
    mismatches: list[str] = []
    speedups: dict[str, float] = {}
    base_scale = baseline.get("scale")
    if base_scale != report.scale:
        mismatches.append(
            f"scale mismatch: baseline {base_scale} vs run {report.scale} "
            f"(timings and checksums are scale-dependent)"
        )
        return speedups, mismatches
    base_kernels: dict[str, Any] = baseline.get("kernels", {})
    if only is not None:
        wanted = set(only)
        base_kernels = {
            name: k for name, k in base_kernels.items() if name in wanted
        }
    for name, want in sorted(base_kernels.items()):
        got = report.kernels.get(name)
        if got is None:
            mismatches.append(f"{name}: kernel missing from this run")
            continue
        if want.get("checksum") != got.checksum:
            mismatches.append(
                f"{name}: checksum {got.checksum[:16]} != baseline "
                f"{str(want.get('checksum'))[:16]} — hot path changed "
                f"behaviour (the optimization equivalence gate)"
            )
        base_median = float(want.get("median_s") or 0.0)
        if base_median > 0 and got.median_s > 0:
            speedups[name] = base_median / got.median_s
    return speedups, mismatches


def format_comparison(
    speedups: dict[str, float], mismatches: list[str]
) -> str:
    from repro.bench.format import render_table

    lines = []
    if speedups:
        rows = [[name, f"{ratio:.2f}x"] for name, ratio in speedups.items()]
        lines.append(render_table(
            ["kernel", "speedup vs baseline"], rows,
            "Baseline comparison (>1 = faster; informational)",
        ))
    if mismatches:
        lines.append("EQUIVALENCE FAILURES (gating):")
        lines.extend(f"  - {m}" for m in mismatches)
    else:
        lines.append("checksums match the baseline: hot paths are "
                      "behaviour-identical")
    return "\n".join(lines)
