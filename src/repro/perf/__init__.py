"""Microbenchmark harness for the simulator's hot paths (``repro.perf``).

Every performance PR records its trajectory here: timed kernels covering
the engine event loop, the DRAM timing model, the IX-cache probe/fill
path, B+tree walk generation, and the end-to-end :func:`simulate` run.
Each kernel also returns a deterministic *checksum* of its functional
output, so a baseline comparison gates on behaviour equivalence (digest
match) while wall-clock numbers stay informational — the same
byte-identity discipline the run pipeline's ResultStore enforces.

Usage::

    python -m repro perf [--out perf.json] [--baseline BENCH_perf.json]
"""

from repro.perf.harness import (
    KernelResult,
    PerfReport,
    compare_reports,
    format_comparison,
    format_report,
    run_suite,
)
from repro.perf.kernels import KERNELS, kernel_names

__all__ = [
    "KERNELS",
    "KernelResult",
    "PerfReport",
    "compare_reports",
    "format_comparison",
    "format_report",
    "kernel_names",
    "run_suite",
]
