"""repro.serve — open-loop serving simulation over the tile backend.

Models the DSA + IX-cache simulator as an online service: a seeded
Poisson user population (mean users x requests/min) feeds a
client -> load-balancer -> N-tile topology where each tile replays the
walk-latency distribution of one simulated METAL instance
(:mod:`repro.sim.tile_backend`). Output is SLO-style: p50/p90/p99
end-to-end latency, throughput, per-tile utilization, and — via the
load sweep in :mod:`repro.bench.serve` / ``python -m repro serve`` —
the saturation knee as offered load rises.

:class:`ServeSpec` is frozen and canonically hashed, so serving runs
flow through the exec layer's dedup, process pool, and result store
exactly like :class:`~repro.exec.spec.RunSpec` cells do. Because the
topology is a seeded queueing simulation, it is testable against
closed-form queueing theory (see ``tests/test_serve_oracle.py``).
"""

from repro.serve.arrivals import (
    AGGREGATE_LIMIT,
    exponential_gaps,
    merged_arrivals,
    population_size,
    uniform,
    user_arrivals,
)
from repro.serve.engine import (
    ServeResult,
    TileLoad,
    execute_serve,
    simulate_serve,
)
from repro.serve.slo import (
    SLObjective,
    SLOReport,
    burn_rate,
    evaluate_histogram,
    evaluate_spans,
    windowed_slo,
)
from repro.serve.spec import BALANCERS, ServeSpec

__all__ = [
    "AGGREGATE_LIMIT",
    "BALANCERS",
    "SLObjective",
    "SLOReport",
    "ServeResult",
    "ServeSpec",
    "TileLoad",
    "burn_rate",
    "evaluate_histogram",
    "evaluate_spans",
    "execute_serve",
    "exponential_gaps",
    "merged_arrivals",
    "population_size",
    "simulate_serve",
    "uniform",
    "user_arrivals",
    "windowed_slo",
]
