"""Open-loop serving simulation: client -> load balancer -> N tiles.

The topology is feed-forward with FIFO stations, so the simulation is an
exact sequential sweep over the merged arrival stream (no event heap
needed): requests reach the balancer in arrival order, the balancer is a
single FIFO server with deterministic dispatch cost, and each tile is a
single FIFO server whose per-request service time comes from the tile
backend (:mod:`repro.sim.tile_backend`) or, for the analytical oracle
configuration, a fixed constant. Dispatch times are nondecreasing, so
per-tile ``busy_until`` bookkeeping reproduces the event-driven schedule
exactly.

Balancer policies:

* ``round_robin``  — tiles in dispatch order, blind to backlog.
* ``least_loaded`` — the tile with the least outstanding work (in time
  units, so a slow tile's queue weighs more), ties to the lowest id.

Every request accrues generation time, client->balancer latency,
balancer queueing + dispatch, balancer->tile latency, tile queueing, the
tile's simulated walk service time, and the response latency; the
end-to-end latency histograms (p50/p90/p99) come from the existing
:class:`repro.obs.histogram.Histogram` machinery, and the optional
completion time series from :func:`repro.obs.series.request_series`.

With ``ServeSpec.trace`` set, every request additionally records its
span tree (:class:`repro.obs.spans.RequestSpan`): the seven hops listed
above as contiguous child spans whose durations sum exactly to the
recorded end-to-end latency, with ``service`` spans carrying the
backend walk ordinal they replay (the link into the sim-side walk-span
profiler). Tracing off is the default and leaves the result payload
byte-identical to pre-span builds — the serve-trace-overhead CI gate
holds the layer to that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.histogram import Histogram
from repro.obs.series import Series, request_series
from repro.obs.spans import RequestSpan, SpanLog
from repro.serve.arrivals import merged_arrivals, population_size
from repro.serve.spec import ServeSpec

#: Percentile precision: 2^-7 < 0.8% relative error, tight enough for
#: the 5% oracle tolerances.
_SIGNIFICANT_BITS = 7


@dataclass
class TileLoad:
    """One tile's accounting over the run."""

    tile: int
    requests: int = 0
    busy_ns: int = 0
    #: Completion time of the tile's last service (0 if never used).
    last_done_ns: int = 0

    def utilization(self, horizon_ns: int) -> float:
        if horizon_ns <= 0:
            return 0.0
        return self.busy_ns / horizon_ns


@dataclass
class ServeResult:
    """Everything the serving layer reports about one :class:`ServeSpec` run.

    All fields are stored explicitly (no recomputation on restore), so
    ``from_dict(to_dict(r)).to_dict() == to_dict(r)`` holds byte for byte
    across the serial, pooled, and cached exec paths.
    """

    workload: str
    system: str
    balancer: str
    load: float
    #: Realized active-user count (Poisson draw or the fixed mean).
    users: int
    offered: int
    completed: int
    duration_ms: int
    #: Last tile service completion — the service's busy horizon.
    makespan_ns: int
    #: Completions per second over the busy horizon.
    throughput_rps: float
    #: Mean tile utilization (busy time / busy horizon).
    utilization: float
    latency: Histogram
    lb_wait: Histogram
    tile_wait: Histogram
    service: Histogram
    tiles: list[TileLoad] = field(default_factory=list)
    timeline: Series | None = None
    #: Request span trees (ServeSpec.trace); absent keys keep untraced
    #: payloads byte-identical to pre-span builds.
    spans: SpanLog | None = None

    @staticmethod
    def _hist_dict(hist: Histogram) -> dict[str, Any]:
        return {**hist.to_dict(), "state": hist.state()}

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable summary; the exec-layer payload body."""
        return {
            "workload": self.workload,
            "system": self.system,
            "balancer": self.balancer,
            "load": self.load,
            "users": self.users,
            "offered": self.offered,
            "completed": self.completed,
            "duration_ms": self.duration_ms,
            "makespan_ns": self.makespan_ns,
            "throughput_rps": self.throughput_rps,
            "utilization": self.utilization,
            "latency_ns": self._hist_dict(self.latency),
            "lb_wait_ns": self._hist_dict(self.lb_wait),
            "tile_wait_ns": self._hist_dict(self.tile_wait),
            "service_ns": self._hist_dict(self.service),
            "tiles": [
                {
                    "tile": t.tile,
                    "requests": t.requests,
                    "busy_ns": t.busy_ns,
                    "last_done_ns": t.last_done_ns,
                    "utilization": t.utilization(self.makespan_ns),
                }
                for t in self.tiles
            ],
            **(
                {"timeline": {"columns": self.timeline.columns,
                              "rows": self.timeline.rows}}
                if self.timeline is not None
                else {}
            ),
            **(
                {"spans": self.spans.to_dict()}
                if self.spans is not None
                else {}
            ),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ServeResult":
        """Inverse of :meth:`to_dict` (JSON round-trip safe)."""
        timeline_d = data.get("timeline")
        return cls(
            workload=data["workload"],
            system=data["system"],
            balancer=data["balancer"],
            load=data["load"],
            users=data["users"],
            offered=data["offered"],
            completed=data["completed"],
            duration_ms=data["duration_ms"],
            makespan_ns=data["makespan_ns"],
            throughput_rps=data["throughput_rps"],
            utilization=data["utilization"],
            latency=Histogram.from_state(data["latency_ns"]["state"]),
            lb_wait=Histogram.from_state(data["lb_wait_ns"]["state"]),
            tile_wait=Histogram.from_state(data["tile_wait_ns"]["state"]),
            service=Histogram.from_state(data["service_ns"]["state"]),
            tiles=[
                TileLoad(tile=t["tile"], requests=t["requests"],
                         busy_ns=t["busy_ns"], last_done_ns=t["last_done_ns"])
                for t in data["tiles"]
            ],
            timeline=(
                Series("serve_timeline", list(timeline_d["columns"]),
                       [list(row) for row in timeline_d["rows"]])
                if timeline_d is not None
                else None
            ),
            spans=(
                SpanLog.from_dict(data["spans"])
                if data.get("spans") is not None
                else None
            ),
        )

    def percentiles(self) -> dict[str, int]:
        """p50/p90/p99 end-to-end latency in nanoseconds."""
        return {
            "p50": self.latency.percentile(50),
            "p90": self.latency.percentile(90),
            "p99": self.latency.percentile(99),
        }


def _service_source(spec: ServeSpec):
    """(service_ns, walk_index, mean_ns) for the spec's backend.

    ``walk_index(tile, k)`` names the backend walk ordinal a service
    span replays (the span <-> walk-profiler link); the fixed backend
    has no backing walks, so it always answers -1.
    """
    if spec.backend == "fixed":
        fixed = spec.service_ns
        no_walk = lambda tile, k: -1
        speedups = spec.tile_speedups
        if speedups:
            scaled = [max(1, round(fixed / s)) for s in speedups]
            return (lambda tile, k: scaled[tile]), no_walk, float(fixed)
        return (lambda tile, k: fixed), no_walk, float(fixed)

    from repro.sim.tile_backend import build_service_model

    model = build_service_model(
        spec.workload, spec.system, spec.scale, spec.seed, spec.tiles
    )
    speedups = spec.tile_speedups or (1.0,) * spec.tiles
    return (lambda tile, k: model.service_ns(tile, k, speedups[tile])), \
        model.walk_index, model.mean_ns


def simulate_serve(spec: ServeSpec) -> ServeResult:
    """Run one open-loop serving simulation to drain."""
    users = population_size(spec.users, spec.seed, spec.population)
    arrivals = merged_arrivals(
        spec.seed, users, spec.rate_per_user_ns(), spec.duration_ns()
    )
    service_of, walk_of, _ = _service_source(spec)

    latency = Histogram(_SIGNIFICANT_BITS)
    lb_wait_h = Histogram(_SIGNIFICANT_BITS)
    tile_wait_h = Histogram(_SIGNIFICANT_BITS)
    service_h = Histogram(_SIGNIFICANT_BITS)
    tiles = [TileLoad(tile=i) for i in range(spec.tiles)]
    busy_until = [0] * spec.tiles
    served = [0] * spec.tiles

    round_robin = spec.balancer == "round_robin"
    n_tiles = spec.tiles
    lb_free = 0
    dispatched = 0
    completions: list[tuple[int, int]] = []
    #: Span recording is opt-in; the untraced loop touches nothing here,
    #: keeping spans-off results byte-identical to pre-span builds.
    span_rows: list[RequestSpan] | None = [] if spec.trace else None

    for t_gen, _user in arrivals:
        t_lb_in = t_gen + spec.client_lb_ns
        t_lb_start = t_lb_in if t_lb_in >= lb_free else lb_free
        lb_wait_h.record(t_lb_start - t_lb_in)
        lb_free = t_lb_start + spec.lb_service_ns
        t_tile_in = lb_free + spec.lb_tile_ns

        if round_robin:
            tile = dispatched % n_tiles
        else:
            # Least outstanding work in time units at dispatch.
            tile = 0
            best = busy_until[0] - t_tile_in
            if best < 0:
                best = 0
            for i in range(1, n_tiles):
                backlog = busy_until[i] - t_tile_in
                if backlog < 0:
                    backlog = 0
                if backlog < best:
                    best = backlog
                    tile = i
        dispatched += 1

        k = served[tile]
        svc = service_of(tile, k)
        served[tile] += 1
        t_svc_start = t_tile_in if t_tile_in >= busy_until[tile] \
            else busy_until[tile]
        tile_wait_h.record(t_svc_start - t_tile_in)
        service_h.record(svc)
        t_done = t_svc_start + svc
        busy_until[tile] = t_done

        stats = tiles[tile]
        stats.requests += 1
        stats.busy_ns += svc
        stats.last_done_ns = t_done

        e2e = t_done + spec.tile_client_ns - t_gen
        latency.record(e2e)
        completions.append((t_done + spec.tile_client_ns, e2e))

        if span_rows is not None:
            span_rows.append(RequestSpan(
                rid=dispatched - 1, user=_user, tile=tile,
                walk=walk_of(tile, k), start=t_gen, latency=e2e,
                hops=(spec.client_lb_ns, t_lb_start - t_lb_in,
                      spec.lb_service_ns, spec.lb_tile_ns,
                      t_svc_start - t_tile_in, svc, spec.tile_client_ns),
            ))

    makespan = max((t.last_done_ns for t in tiles), default=0)
    offered = len(arrivals)
    throughput = offered / (makespan / 1e9) if makespan else 0.0
    utilization = (
        sum(t.utilization(makespan) for t in tiles) / n_tiles if makespan
        else 0.0
    )
    timeline = None
    if spec.timeline_windows > 0 and completions:
        timeline = request_series(completions, windows=spec.timeline_windows)

    return ServeResult(
        workload=spec.workload,
        system=spec.system,
        balancer=spec.balancer,
        load=spec.load,
        users=users,
        offered=offered,
        completed=offered,
        duration_ms=spec.duration_ms,
        makespan_ns=makespan,
        throughput_rps=throughput,
        utilization=utilization,
        latency=latency,
        lb_wait=lb_wait_h,
        tile_wait=tile_wait_h,
        service=service_h,
        tiles=tiles,
        timeline=timeline,
        spans=SpanLog(requests=span_rows) if span_rows is not None else None,
    )


def execute_serve(spec: ServeSpec) -> dict[str, Any]:
    """Exec-worker entry point: the payload beside ``op: "serve"``."""
    return {"op": "serve", "data": simulate_serve(spec).to_dict(),
            "extras": {}}
