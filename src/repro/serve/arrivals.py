"""Seeded open-loop arrival generation for the serving layer.

A population of users each emits a Poisson request stream: exponential
inter-arrival gaps at ``rate`` requests per nanosecond, quantized by
flooring the *cumulative* arrival time (so quantization error never
accumulates). All randomness comes from the same counter-based
splitmix64 mixer the fault layer uses — a draw depends only on
``(seed, stream, counter)``, never on Python's hash seed, process
layout, or any other stream's draws — so the same spec always produces
the same arrival sequence on every machine and Python version.

The merged population stream is the superposition of the per-user
streams, ordered by ``(time, user)``; each user's requests appear in
their own generation order. Superposed Poisson streams are themselves
Poisson with the summed rate, which is what makes the serving simulator
testable against M/G/1 closed forms. Populations past
:data:`AGGREGATE_LIMIT` users switch to sampling the superposed process
directly (one exponential stream at the aggregate rate, user ids drawn
uniformly) — distributionally identical, O(requests) instead of
O(users + requests).
"""

from __future__ import annotations

import math

_M64 = (1 << 64) - 1

#: Stream ids: 0 draws the population size, 1 the aggregate-mode stream
#: and its user labels; per-user streams start here.
POPULATION_STREAM = 0
AGGREGATE_STREAM = 1
USER_STREAM_BASE = 2

#: Above this many users, per-user streams give way to aggregate sampling.
AGGREGATE_LIMIT = 4096

#: Poisson population draws switch from exact inversion to a rounded
#: normal approximation above this mean (inversion underflows near 700).
_POISSON_NORMAL_CUTOFF = 256


def uniform(seed: int, stream: int, n: int) -> float:
    """Uniform [0, 1) draw from (seed, stream, counter) — splitmix64 mix."""
    x = (seed * 0x9E3779B97F4A7C15
         + stream * 0xBF58476D1CE4E5B9
         + n * 0x94D049BB133111EB + 0xD6E8FEB86659FD93) & _M64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _M64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _M64
    x ^= x >> 31
    return (x >> 11) * (1.0 / (1 << 53))


def exponential_gaps(seed: int, stream: int, rate: float,
                     count: int) -> list[float]:
    """``count`` exponential(rate) gaps from one counted stream."""
    if not rate > 0:
        raise ValueError("rate must be > 0")
    return [-math.log(1.0 - uniform(seed, stream, n)) / rate
            for n in range(count)]


def population_size(mean_users: int, seed: int, mode: str = "poisson") -> int:
    """The active-user count: exactly ``mean_users`` or a Poisson draw.

    The draw is clamped to >= 1 (an empty service generates no data) and
    consumes counters on :data:`POPULATION_STREAM` only.
    """
    if mode == "fixed":
        return mean_users
    if mode != "poisson":
        raise ValueError(f"unknown population mode {mode!r}")
    if mean_users <= _POISSON_NORMAL_CUTOFF:
        # Exact inversion: walk the CDF with one uniform.
        u = uniform(seed, POPULATION_STREAM, 0)
        p = math.exp(-mean_users)
        cdf = p
        k = 0
        while u >= cdf and k < 10 * mean_users + 50:
            k += 1
            p *= mean_users / k
            cdf += p
        return max(1, k)
    # Box-Muller normal approximation, exact to O(1/sqrt(mean)).
    u1 = uniform(seed, POPULATION_STREAM, 0)
    u2 = uniform(seed, POPULATION_STREAM, 1)
    z = math.sqrt(-2.0 * math.log(1.0 - u1)) * math.cos(2.0 * math.pi * u2)
    return max(1, round(mean_users + z * math.sqrt(mean_users)))


def user_arrivals(seed: int, user: int, rate: float,
                  duration_ns: int) -> list[int]:
    """One user's arrival times (int ns, ascending) within the horizon."""
    if not rate > 0:
        raise ValueError("rate must be > 0")
    arrivals: list[int] = []
    t = 0.0
    n = 0
    stream = USER_STREAM_BASE + user
    while True:
        t += -math.log(1.0 - uniform(seed, stream, n)) / rate
        n += 1
        if t >= duration_ns:
            return arrivals
        arrivals.append(int(t))


def _aggregate_arrivals(seed: int, users: int, rate: float,
                        duration_ns: int) -> list[tuple[int, int]]:
    """The superposed stream sampled directly at ``users * rate``."""
    arrivals: list[tuple[int, int]] = []
    total_rate = users * rate
    t = 0.0
    n = 0
    while True:
        t += -math.log(1.0 - uniform(seed, AGGREGATE_STREAM, 2 * n)) / total_rate
        if t >= duration_ns:
            # Quantization can land two arrivals on one integer
            # nanosecond; the final near-sorted sort (O(n) in Timsort)
            # keeps the merged stream's (time, user) ordering contract.
            arrivals.sort()
            return arrivals
        user = int(uniform(seed, AGGREGATE_STREAM, 2 * n + 1) * users)
        arrivals.append((int(t), min(user, users - 1)))
        n += 1


def merged_arrivals(seed: int, users: int, rate: float,
                    duration_ns: int) -> list[tuple[int, int]]:
    """The population's ``(time_ns, user)`` stream, ordered by (time, user).

    Per-user exponential streams merged with a stable order, so each
    user's requests keep their generation order and ties break by user
    id — the merge is a pure function of the per-user streams.
    """
    if users < 1:
        raise ValueError("users must be >= 1")
    if users > AGGREGATE_LIMIT:
        return _aggregate_arrivals(seed, users, rate, duration_ns)
    merged = [
        (t, user)
        for user in range(users)
        for t in user_arrivals(seed, user, rate, duration_ns)
    ]
    merged.sort()
    return merged
