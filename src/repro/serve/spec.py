"""ServeSpec — a frozen, canonically-hashed description of one serving run.

The serving layer models the DSA + IX-cache simulator as the per-tile
backend of an online service: a seeded Poisson user population feeds a
client -> load balancer -> N-tile topology, and every request accrues
generation time, queueing delay at the balancer and its tile, and the
tile's simulated walk latency.

A :class:`ServeSpec` is pure data (JSON scalars plus one tuple of
floats), serialized to the same canonical JSON form that
:class:`repro.exec.spec.RunSpec` uses, so serving runs flow through the
exec layer's dedup, process pool, and content-addressed
:class:`~repro.exec.store.ResultStore` unchanged: the executor and store
only ever call ``digest()``/``canonical_dict()``/``label()`` and hash the
frozen dataclass, and the worker dispatches on ``op == "serve"``. Two
specs that mean the same serving run always hash the same; a serve spec
can never collide with a plain simulation spec because its canonical
form carries different field names and ``"op": "serve"``.

All serving-layer times are integer **nanoseconds** (the tile backend
converts DSA cycles at :data:`repro.sim.tile_backend.CLOCK_MHZ`), except
``duration_ms`` and the per-user request rate, which stay in human units.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, Sequence

#: Load-balancer policies (see repro.serve.engine).
BALANCERS: tuple[str, ...] = ("round_robin", "least_loaded")
#: User-population modes: "poisson" draws the active-user count from a
#: Poisson(users) distribution; "fixed" uses exactly ``users`` users.
POPULATIONS: tuple[str, ...] = ("poisson", "fixed")
#: Tile service-time backends: "sim" replays walk latencies from one
#: simulator run; "fixed" serves every request in ``service_ns`` exactly
#: (the M/D/1 oracle configuration).
BACKENDS: tuple[str, ...] = ("sim", "fixed")


@dataclass(frozen=True)
class ServeSpec:
    """One open-loop serving simulation, ready to hash, ship, and cache."""

    #: Registry workload backing the tiles (also used by backend="fixed"
    #: purely as a label).
    workload: str
    #: Memory system each tile runs (one METAL instance per tile).
    system: str = "metal"
    #: Workload scale of the per-tile backend simulation.
    scale: float = 0.05
    #: Master seed: population draw, per-user arrival streams.
    seed: int = 0
    #: Worker dispatch key; fixed for this spec type.
    op: str = "serve"
    #: Mean number of active users.
    users: int = 32
    #: Mean requests per minute per active user.
    requests_per_min: float = 60.0
    #: Offered-load multiplier on the aggregate arrival rate — the knob
    #: the saturation sweep turns.
    load: float = 1.0
    #: Arrival-generation horizon; the simulation runs to drain.
    duration_ms: int = 1_000
    population: str = "poisson"
    #: Number of tiles behind the balancer.
    tiles: int = 4
    balancer: str = "round_robin"
    #: Per-tile service-speed multipliers (skewed tiles); () = all 1.0.
    tile_speedups: tuple[float, ...] = ()
    backend: str = "sim"
    #: Deterministic per-request service time for backend="fixed".
    service_ns: int = 0
    #: One-way client -> balancer network latency.
    client_lb_ns: int = 40_000
    #: Balancer dispatch cost per request (its own FIFO service time).
    #: Small by default so the tiles, not the balancer, saturate first;
    #: raise it to study a dispatch-bound service.
    lb_service_ns: int = 10
    #: One-way balancer -> tile network latency.
    lb_tile_ns: int = 10_000
    #: One-way tile -> client response latency.
    tile_client_ns: int = 40_000
    #: When > 0, the result carries a completion time series with this
    #: many windows (repro.obs.series.request_series).
    timeline_windows: int = 0
    #: Record a per-request span tree (repro.obs.spans.SpanLog) on the
    #: result. Off by default; with tracing off the ServeResult payload
    #: is byte-identical to an untraced run (the serve-trace-overhead
    #: CI gate pins this).
    trace: bool = False

    def __post_init__(self) -> None:
        if self.op != "serve":
            raise ValueError(f"ServeSpec.op must be 'serve', got {self.op!r}")
        if self.balancer not in BALANCERS:
            raise ValueError(
                f"balancer must be one of {BALANCERS}, got {self.balancer!r}")
        if self.population not in POPULATIONS:
            raise ValueError(
                f"population must be one of {POPULATIONS}, "
                f"got {self.population!r}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}")
        if self.tiles < 1:
            raise ValueError("tiles must be >= 1")
        if self.users < 1:
            raise ValueError("users must be >= 1")
        if not self.requests_per_min > 0:
            raise ValueError("requests_per_min must be > 0")
        if not self.load > 0:
            raise ValueError("load must be > 0")
        if self.duration_ms < 1:
            raise ValueError("duration_ms must be >= 1")
        if self.backend == "fixed" and self.service_ns < 1:
            raise ValueError("backend='fixed' needs service_ns >= 1")
        if self.tile_speedups:
            if len(self.tile_speedups) != self.tiles:
                raise ValueError(
                    f"tile_speedups needs {self.tiles} entries, "
                    f"got {len(self.tile_speedups)}")
            if any(not s > 0 for s in self.tile_speedups):
                raise ValueError("tile_speedups must all be > 0")
        for name in ("client_lb_ns", "lb_service_ns", "lb_tile_ns",
                     "tile_client_ns", "service_ns", "timeline_windows"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @classmethod
    def make(cls, workload: str, **kwargs: Any) -> "ServeSpec":
        """Build a spec, normalizing sequence arguments to canonical tuples."""
        speedups: Sequence[float] | None = kwargs.get("tile_speedups")
        if speedups is not None:
            kwargs["tile_speedups"] = tuple(float(s) for s in speedups)
        return cls(workload=workload, **kwargs)

    def canonical(self) -> str:
        """Stable JSON text: same meaning => same bytes => same digest."""
        return json.dumps(
            {f.name: getattr(self, f.name) for f in fields(self)},
            sort_keys=True, separators=(",", ":"),
        )

    def canonical_dict(self) -> dict[str, Any]:
        """The canonical form as plain JSON data (tuples become lists)."""
        return json.loads(self.canonical())

    def digest(self) -> str:
        return hashlib.sha256(self.canonical().encode()).hexdigest()

    def duration_ns(self) -> int:
        return self.duration_ms * 1_000_000

    def rate_per_user_ns(self) -> float:
        """Per-user arrival rate in requests per nanosecond."""
        return self.requests_per_min * self.load / 60e9

    def label(self) -> str:
        """Short human-readable tag for failure reports and logs."""
        return (f"serve:{self.workload}/{self.system}@{self.scale:g}"
                f"x{self.load:g}s{self.seed}")
