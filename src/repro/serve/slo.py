"""SLO evaluation for serving runs: attainment and error-budget burn.

An :class:`SLObjective` is the SRE-style contract "``target`` of
requests complete within ``latency_ns``" (e.g. 99% under 500 us).
Evaluation is deterministic and works at two fidelities:

* From a latency **histogram** (any ``ServeResult``, traced or not):
  attainment uses :meth:`repro.obs.histogram.Histogram.count_at_or_below`
  — exact in the unit-bucket range, conservative by at most one log
  bucket above it, and bit-for-bit reproducible.
* From a request **span log** (``ServeSpec.trace``): exact per-request
  latencies, plus :func:`windowed_slo` — per-window attainment and
  burn rate over the run, the error-budget view an alerting pipeline
  would page on.

**Burn rate** follows the SRE-workbook definition: the fraction of
requests violating the objective divided by the budgeted violation
fraction ``1 - target``. Burn 1.0 spends the error budget exactly at
the allowed pace; a load point past the saturation knee typically burns
at 10x or more, which is what the ``python -m repro serve --slo``
report surfaces per swept load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.obs.histogram import Histogram
from repro.obs.series import Series
from repro.obs.spans import SpanLog


@dataclass(frozen=True)
class SLObjective:
    """``target`` fraction of requests within ``latency_ns``."""

    latency_ns: int
    target: float = 0.99

    def __post_init__(self) -> None:
        if self.latency_ns < 1:
            raise ValueError("latency_ns must be >= 1")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")

    @property
    def budget(self) -> float:
        """Allowed violating fraction (the error budget)."""
        return 1.0 - self.target

    def label(self) -> str:
        return f"{self.target * 100:g}% <= {self.latency_ns / 1e3:g}us"


def burn_rate(bad: int, total: int, objective: SLObjective) -> float:
    """Violating fraction over the budgeted fraction (1.0 = on budget)."""
    if total <= 0:
        return 0.0
    return (bad / total) / objective.budget


@dataclass
class SLOReport:
    """One run (or window) against one objective."""

    objective: SLObjective
    total: int
    good: int

    @property
    def bad(self) -> int:
        return self.total - self.good

    @property
    def attainment(self) -> float:
        """Fraction of requests meeting the objective (1.0 when idle)."""
        if self.total <= 0:
            return 1.0
        return self.good / self.total

    @property
    def burn(self) -> float:
        return burn_rate(self.bad, self.total, self.objective)

    @property
    def met(self) -> bool:
        return self.attainment >= self.objective.target

    def to_dict(self) -> dict[str, Any]:
        return {
            "latency_ns": self.objective.latency_ns,
            "target": self.objective.target,
            "total": self.total,
            "good": self.good,
            "attainment": self.attainment,
            "burn": self.burn,
            "met": self.met,
        }


def evaluate_histogram(hist: Histogram, objective: SLObjective) -> SLOReport:
    """Attainment of a latency histogram against one objective."""
    return SLOReport(objective=objective, total=hist.count,
                     good=hist.count_at_or_below(objective.latency_ns))


def evaluate_spans(log: SpanLog, objective: SLObjective) -> SLOReport:
    """Exact attainment from a request span log."""
    good = sum(1 for span in log if span.latency <= objective.latency_ns)
    return SLOReport(objective=objective, total=len(log), good=good)


def windowed_slo(log: SpanLog, objective: SLObjective, windows: int = 20,
                 makespan: int | None = None) -> Series:
    """Per-window attainment and burn over a traced run.

    The horizon up to the last completion splits into ``windows`` equal
    windows; requests count toward the window they *complete* in. Burn
    above 1.0 in a window means that window spent error budget faster
    than the objective allows — the standard burn-rate alert signal.
    """
    if windows <= 0:
        raise ValueError("windows must be positive")
    series = Series("slo_windows", [
        "t_end", "requests", "good", "attainment", "burn",
    ])
    if not len(log):
        return series
    horizon = makespan if makespan is not None else log.makespan()
    width = max(1, -(-horizon // windows))  # ceil division
    totals = [0] * windows
    goods = [0] * windows
    for span in log:
        done = span.end
        bucket = min((done - 1) // width, windows - 1) if done > 0 else 0
        totals[bucket] += 1
        if span.latency <= objective.latency_ns:
            goods[bucket] += 1
    for w in range(windows):
        total, good = totals[w], goods[w]
        series.rows.append([
            (w + 1) * width,
            total,
            good,
            good / total if total else 1.0,
            burn_rate(total - good, total, objective),
        ])
    return series
