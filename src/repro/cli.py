"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``report``    — regenerate every table/figure (see repro.bench.report).
* ``compare``   — run one workload across memory systems.
* ``workloads`` — list the Table-2 workload registry.
* ``ablation``  — run the design-choice ablations.
* ``trace``     — run one workload with event tracing, export a Chrome
  ``trace_event`` JSON (opens in Perfetto) and optionally JSONL.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.bench.format import render_table
from repro.bench.runner import SYSTEMS, compare_systems
from repro.workloads.suite import PAPER_LABELS, WORKLOAD_BUILDERS, build_workload


def cmd_workloads(_args: argparse.Namespace) -> int:
    rows = []
    for name in WORKLOAD_BUILDERS:
        workload = build_workload(name, scale=0.02)
        rows.append([name, PAPER_LABELS.get(name, name), workload.dsa,
                     workload.pattern])
    print(render_table(["key", "paper label", "DSA", "pattern"], rows,
                       "Table-2 workload registry"))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    kinds = tuple(args.systems.split(",")) if args.systems else SYSTEMS
    unknown = set(kinds) - set(SYSTEMS) - {"address_pf"}
    if unknown:
        print(f"unknown systems: {sorted(unknown)}", file=sys.stderr)
        return 2
    workload = build_workload(args.workload, scale=args.scale, seed=args.seed)
    print(f"{workload.name}: {workload.notes}")
    results = compare_systems(workload, kinds=kinds,
                              cache_bytes=args.cache_kb * 1024 if args.cache_kb else None)
    base = results.get("stream") or next(iter(results.values()))
    rows = []
    for name, run in results.items():
        rows.append([
            name,
            base.makespan / max(1, run.makespan),
            run.avg_walk_latency,
            run.miss_rate,
            run.working_set_fraction,
            run.dram_energy_fj / 1e6,
        ])
    print(render_table(
        ["system", "speedup", "walk lat", "miss", "working set", "DRAM nJ"],
        rows,
    ))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.bench.report import generate_report

    report = generate_report(scale=args.scale, fast=args.fast)
    print(report)
    if args.out:
        with open(args.out, "w") as f:
            f.write(report)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.bench.runner import build_memsys
    from repro.obs.export import write_chrome_trace, write_jsonl
    from repro.sim.metrics import simulate

    if args.system not in SYSTEMS and args.system not in ("address_pf", "address_l2"):
        print(f"unknown system: {args.system}", file=sys.stderr)
        return 2
    workload = build_workload(args.workload, scale=args.scale, seed=args.seed)
    sim = replace(
        workload.config.sim_params(), trace=True, trace_buffer=args.buffer
    )
    cache_bytes = args.cache_kb * 1024 if args.cache_kb else None
    memsys = build_memsys(args.system, workload, cache_bytes, sim)
    result = simulate(memsys, workload.requests, sim, workload.total_index_blocks)
    assert result.tracer is not None

    out = args.out or f"trace_{args.workload}_{args.system}.json"
    write_chrome_trace(result.tracer, out, result.counters)
    print(f"{workload.name} / {args.system}: {result.num_walks} walks, "
          f"{len(result.tracer)} events buffered "
          f"({result.tracer.dropped} dropped)")
    print(f"Chrome trace written to {out} "
          f"(open at https://ui.perfetto.dev or chrome://tracing)")
    if args.jsonl:
        write_jsonl(result.tracer, args.jsonl)
        print(f"JSONL events written to {args.jsonl}")

    rows = [[kind, count] for kind, count in sorted(result.tracer.counts.items())]
    print()
    print(render_table(["event kind", "count"], rows, "Event counts"))
    if result.counters:
        rows = [[name, value] for name, value in result.counters.items()]
        print()
        print(render_table(["counter", "value"], rows, "Counter snapshot"))
    return 0


def cmd_ablation(args: argparse.Namespace) -> int:
    from repro.bench import ablation

    workload = build_workload(args.workload, scale=args.scale)
    print(ablation.format_geometry(ablation.run_geometry_sweep(workload)))
    print()
    print(ablation.format_shared_vs_private(
        ablation.run_shared_vs_private(workload)))
    print()
    print(ablation.format_toggles(ablation.run_mechanism_toggles(workload)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="METAL (ASPLOS'24) reproduction harness"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("workloads", help="list the Table-2 workloads")
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser("compare", help="run one workload across systems")
    p.add_argument("workload", choices=sorted(WORKLOAD_BUILDERS))
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--systems", type=str, default=None,
                   help="comma-separated subset, e.g. stream,metal")
    p.add_argument("--cache-kb", type=int, default=None)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("report", help="regenerate every table and figure")
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--out", type=str, default=None)
    p.add_argument("--fast", action="store_true")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("ablation", help="design-choice ablations")
    p.add_argument("--workload", default="scan", choices=sorted(WORKLOAD_BUILDERS))
    p.add_argument("--scale", type=float, default=0.25)
    p.set_defaults(func=cmd_ablation)

    p = sub.add_parser("trace", help="run one workload with event tracing")
    p.add_argument("workload", choices=sorted(WORKLOAD_BUILDERS))
    p.add_argument("--system", default="metal",
                   help="memory system to trace (default: metal)")
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cache-kb", type=int, default=None)
    p.add_argument("--buffer", type=int, default=1 << 20,
                   help="tracer ring-buffer capacity in events")
    p.add_argument("--out", type=str, default=None,
                   help="Chrome trace output path "
                        "(default: trace_<workload>_<system>.json)")
    p.add_argument("--jsonl", type=str, default=None,
                   help="also export raw events as JSONL to this path")
    p.set_defaults(func=cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
