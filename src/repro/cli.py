"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``report``    — regenerate every table/figure (see repro.bench.report);
  ``--baseline`` compares key metrics against a stored baseline and
  exits nonzero on regression.
* ``compare``   — run one workload across memory systems (with walk
  latency percentiles).
* ``workloads`` — list the Table-2 workload registry; ``--stats`` prints
  sized record/walk counts and estimated peak build memory at ``--scale``
  without building anything.
* ``run``       — dbworkload-style run modes (repro.modes): ``--max-rate``
  binary-searches the serving fleet's throughput ceiling, ``--schedule``
  runs ramp/step offered-load profiles, and ``--pipe`` replays a captured
  walk trace (trace_io JSONL, gzip ok) through any memory system.
* ``ablation``  — run the design-choice ablations.
* ``trace``     — run one workload with event tracing, export a Chrome
  ``trace_event`` JSON (opens in Perfetto) and optionally JSONL.
* ``profile``   — run one workload traced and fold the events into
  answers: per-component cycle attribution, walk-latency percentiles,
  gen/engine time series (CSV), and an OpenMetrics snapshot.
* ``perf``      — microbenchmark the simulator's hot paths (repro.perf);
  ``--baseline`` compares against a stored run, gating on checksum
  equivalence while timing ratios stay informational.
* ``chaos``     — sweep a deterministic fault-injection rate over one
  workload/system cell (repro.faults) and print the resilience curve;
  exits nonzero unless degradation is graceful and no request is lost.
* ``serve``     — open-loop serving simulation (repro.serve): a Poisson
  user population drives a client -> load-balancer -> N-tile topology
  (each tile one simulated METAL instance) across a load sweep, and the
  report shows p50/p90/p99 end-to-end latency, throughput, utilization,
  and the saturation knee; ``--baseline`` gates against a committed
  saturation curve. Serving observability rides on the same command:
  ``--trace`` records per-request span trees and prints the tail-latency
  attribution, ``--spans-out`` exports them as a Perfetto trace,
  ``--series-out``/``--windows-out`` write windowed time-series CSVs,
  and ``--slo NS`` evaluates a latency objective (attainment % and
  error-budget burn per load point).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.bench.format import render_table
from repro.bench.runner import SYSTEMS
from repro.exec import Executor, RunSpec
from repro.workloads.suite import (
    PAPER_LABELS,
    PAPER_SCALE,
    WORKLOAD_BUILDERS,
    build_workload,
)

#: Variant systems accepted everywhere SYSTEMS is, but excluded from the
#: default Fig. 18 lineup (next-line-prefetch address cache, two-level
#: address hierarchy).
EXTRA_SYSTEMS: tuple[str, ...] = ("address_pf", "address_l2")


def known_systems() -> tuple[str, ...]:
    """Every memory-system kind a subcommand may name."""
    return SYSTEMS + EXTRA_SYSTEMS


def unknown_systems(kinds) -> list[str]:
    """The subset of ``kinds`` no subcommand can build, sorted."""
    return sorted(set(kinds) - set(known_systems()))


def _reject_unknown_systems(kinds) -> bool:
    """Shared validation for compare/trace/profile; True when invalid."""
    unknown = unknown_systems(kinds)
    if unknown:
        print(f"unknown systems: {unknown} "
              f"(choose from {', '.join(known_systems())})", file=sys.stderr)
    return bool(unknown)


def _warn_dropped(tracer, flag: str = "--buffer") -> None:
    """Point at the ring-buffer size that would have kept every event."""
    if not tracer.dropped:
        return
    needed = len(tracer) + tracer.dropped
    suggested = 1 << (needed - 1).bit_length()
    print(
        f"warning: ring buffer dropped {tracer.dropped} of {needed} "
        f"events (oldest first); rerun with {flag} {suggested} to keep "
        f"them all",
        file=sys.stderr,
    )


def _fmt_bytes(n) -> str:
    if n is None:
        return "-"
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024 or unit == "GB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{n}B"
        n /= 1024
    return f"{n:.1f}GB"


def cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads.suite import SOA_WORKLOADS, workload_stats

    if args.stats:
        rows = []
        for name in WORKLOAD_BUILDERS:
            stats = workload_stats(name, scale=args.scale)
            dims = ", ".join(
                f"{dim}={stats[dim]:,}" for dim in ("records", "dim", "nnz",
                                                    "edges", "outer")
                if dim in stats
            )
            rows.append([
                name, dims, f"{stats['walks']:,}",
                _fmt_bytes(stats["est_object_bytes"]),
                _fmt_bytes(stats["est_soa_bytes"]),
                "yes" if name in SOA_WORKLOADS else "-",
            ])
        print(render_table(
            ["key", "sized dimensions", "walks", "est. peak (object)",
             "est. peak (SoA)", "soa backend"],
            rows, f"Workload sizing at scale {args.scale:g} "
                  f"({PAPER_SCALE:g} = paper scale)"))
        return 0
    rows = []
    for name in WORKLOAD_BUILDERS:
        workload = build_workload(name, scale=0.02)
        rows.append([name, PAPER_LABELS.get(name, name), workload.dsa,
                     workload.pattern])
    print(render_table(["key", "paper label", "DSA", "pattern"], rows,
                       "Table-2 workload registry"))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    import json

    from repro import modes

    if _reject_unknown_systems((args.system,)):
        return 2
    with Executor(jobs=args.jobs) as executor:
        if args.max_rate:
            result = modes.find_max_rate(
                workload=args.workload, system=args.system,
                scale=args.scale, seed=args.seed, users=args.users,
                tiles=args.tiles, requests_per_min=args.rpm,
                duration_ms=args.duration_ms, balancer=args.balancer,
                lo=args.lo, hi=args.hi, iters=args.iters,
                max_util=args.max_util, slo_p99_ns=args.slo_p99_ns,
                executor=executor,
            )
            print(modes.format_max_rate(result))
            payload = result.to_dict()
        elif args.schedule:
            try:
                modes.parse_schedule(args.schedule)
            except ValueError as exc:
                print(str(exc), file=sys.stderr)
                return 2
            result = modes.run_schedule(
                workload=args.workload, system=args.system,
                profile=args.schedule, scale=args.scale, seed=args.seed,
                users=args.users, tiles=args.tiles,
                requests_per_min=args.rpm, duration_ms=args.duration_ms,
                balancer=args.balancer, executor=executor,
            )
            print(modes.format_schedule(result))
            payload = result.to_dict()
        else:
            from repro.exec.executor import ExecError
            from repro.sim.metrics import RunResult
            from repro.workloads.trace_io import TraceTruncated

            try:
                payload = modes.replay_trace(
                    args.workload, args.pipe, system=args.system,
                    scale=args.scale, seed=args.seed, executor=executor,
                )
            except ExecError as exc:
                # Worker-side failure: the original error is the last
                # line of the captured traceback.
                reason = str(exc).strip().splitlines()[-1]
                print(f"trace replay failed: {reason}", file=sys.stderr)
                return 1
            except (TraceTruncated, ValueError, KeyError, OSError) as exc:
                print(f"trace replay failed: {exc}", file=sys.stderr)
                return 1
            run = RunResult.from_dict(payload["result"])
            pct = run.latency_percentiles() or {}
            print(render_table(
                ["walks", "makespan", "avg walk lat", "p99", "miss",
                 "working set"],
                [[run.num_walks, run.makespan, run.avg_walk_latency,
                  pct.get("p99", "-"), run.miss_rate,
                  run.working_set_fraction]],
                f"trace replay: {args.pipe} -> {args.workload}/"
                f"{args.system}@{args.scale:g}",
            ))
    if args.json:
        with open(args.json, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"run data written to {args.json}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    kinds = tuple(args.systems.split(",")) if args.systems else SYSTEMS
    if _reject_unknown_systems(kinds):
        return 2
    workload_kwargs = {}
    if getattr(args, "backend", None):
        workload_kwargs["backend"] = args.backend
    sim_kwargs = {}
    if getattr(args, "engine", None):
        sim_kwargs["engine"] = args.engine
    if getattr(args, "walk_batch", None) is not None:
        sim_kwargs["walk_batch"] = args.walk_batch
    workload = build_workload(
        args.workload, scale=args.scale, seed=args.seed, **workload_kwargs
    )
    print(f"{workload.name}: {workload.notes}")
    specs = [
        RunSpec(
            workload=workload.name, system=kind, scale=workload.scale,
            seed=workload.seed,
            cache_bytes=args.cache_kb * 1024 if args.cache_kb else None,
            record_latencies=True,
            workload_kwargs=tuple(sorted(workload_kwargs.items())),
            sim_kwargs=tuple(sorted(sim_kwargs.items())),
        )
        for kind in kinds
    ]
    with Executor(jobs=args.jobs) as executor:
        executor.seed_workloads([workload])
        results = dict(zip(kinds, executor.run_results(specs)))
    base = results.get("stream") or next(iter(results.values()))
    rows = []
    for name, run in results.items():
        pct = run.latency_percentiles() or {}
        rows.append([
            name,
            base.makespan / max(1, run.makespan),
            run.avg_walk_latency,
            pct.get("p50", "-"),
            pct.get("p99", "-"),
            run.miss_rate,
            run.working_set_fraction,
            run.dram_energy_fj / 1e6,
        ])
    print(render_table(
        ["system", "speedup", "walk lat", "p50", "p99", "miss",
         "working set", "DRAM nJ"],
        rows,
    ))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    # Delegate to the bench entry point so report/baseline semantics live
    # in exactly one place (repro.bench.report).
    from repro.bench.report import main as report_main

    argv = ["--scale", str(args.scale)]
    if args.out:
        argv += ["--out", args.out]
    if args.fast:
        argv += ["--fast"]
    if args.json:
        argv += ["--json", args.json]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.write_baseline:
        argv += ["--write-baseline"]
    if args.baseline_rtol is not None:
        argv += ["--baseline-rtol", str(args.baseline_rtol)]
    argv += ["--jobs", str(args.jobs)]
    if args.no_cache:
        argv += ["--no-cache"]
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    return report_main(argv)


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.bench.runner import build_memsys
    from repro.obs.export import write_chrome_trace, write_jsonl
    from repro.sim.metrics import simulate

    if _reject_unknown_systems((args.system,)):
        return 2
    workload = build_workload(args.workload, scale=args.scale, seed=args.seed)
    sim = replace(
        workload.config.sim_params(), trace=True, trace_buffer=args.buffer
    )
    cache_bytes = args.cache_kb * 1024 if args.cache_kb else None
    memsys = build_memsys(args.system, workload, cache_bytes, sim)
    result = simulate(memsys, workload.requests, sim, workload.total_index_blocks)
    assert result.tracer is not None
    _warn_dropped(result.tracer)

    out = args.out or f"trace_{args.workload}_{args.system}.json"
    write_chrome_trace(result.tracer, out, result.counters)
    print(f"{workload.name} / {args.system}: {result.num_walks} walks, "
          f"{len(result.tracer)} events buffered "
          f"({result.tracer.dropped} dropped)")
    print(f"Chrome trace written to {out} "
          f"(open at https://ui.perfetto.dev or chrome://tracing)")
    if args.jsonl:
        write_jsonl(result.tracer, args.jsonl)
        print(f"JSONL events written to {args.jsonl}")

    rows = [[kind, count] for kind, count in sorted(result.tracer.counts.items())]
    print()
    print(render_table(["event kind", "count"], rows, "Event counts"))
    if result.counters:
        rows = [[name, value] for name, value in result.counters.items()]
        print()
        print(render_table(["counter", "value"], rows, "Counter snapshot"))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.bench.runner import build_memsys
    from repro.obs.export import write_openmetrics
    from repro.obs.histogram import Histogram
    from repro.obs.profile import build_profile, format_profile, reconcile
    from repro.obs.series import engine_series, gen_series
    from repro.sim.metrics import simulate

    if _reject_unknown_systems((args.system,)):
        return 2
    workload = build_workload(args.workload, scale=args.scale, seed=args.seed)
    sim = replace(
        workload.config.sim_params(), trace=True, trace_buffer=args.buffer
    )
    cache_bytes = args.cache_kb * 1024 if args.cache_kb else None
    memsys = build_memsys(args.system, workload, cache_bytes, sim)
    result = simulate(memsys, workload.requests, sim, workload.total_index_blocks)
    assert result.tracer is not None and result.counters is not None
    _warn_dropped(result.tracer)

    profile = build_profile(result.tracer, strict=False)
    print(f"{workload.name} / {args.system}: {result.num_walks} walks, "
          f"makespan {result.makespan} cycles")
    print()
    print(format_profile(profile))
    if result.depth_hist is not None and result.depth_hist.count:
        depth = result.depth_hist
        print()
        print(render_table(
            ["metric", "nodes"],
            [["p50", depth.percentile(50)], ["p90", depth.percentile(90)],
             ["p99", depth.percentile(99)], ["max", depth.max]],
            "Probe depth (nodes visited per walk)",
        ))

    if result.tracer.dropped:
        print("\nnote: events were dropped; skipping exact reconciliation "
              "(raise --buffer for a trustworthy profile)", file=sys.stderr)
    else:
        problems = reconcile(profile, result)
        if problems:
            print("\nPROFILE DOES NOT RECONCILE with RunResult aggregates:",
                  file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print("\nreconciliation: attribution sums match measured walk "
              "latencies cycle for cycle")

    prefix = args.out_prefix or f"profile_{args.workload}_{args.system}"
    gen = gen_series(result.tracer, walk_interval=args.walk_interval)
    gen.write_csv(f"{prefix}_gen.csv")
    engine = engine_series(result.tracer, makespan=result.makespan)
    engine.write_csv(f"{prefix}_engine.csv")
    histograms = {}
    if result.latency_hist is not None and result.latency_hist.count:
        histograms["walk_latency_cycles"] = result.latency_hist
    if result.depth_hist is not None and result.depth_hist.count:
        histograms["probe_depth_nodes"] = result.depth_hist
    write_openmetrics(f"{prefix}.om", result.counters, histograms)
    print(f"series written to {prefix}_gen.csv ({len(gen)} samples) and "
          f"{prefix}_engine.csv ({len(engine)} samples)")
    print(f"OpenMetrics snapshot written to {prefix}.om")
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    import json

    from repro.perf.harness import (
        EXIT_BASELINE_MISSING,
        EXIT_CHECKSUM_MISMATCH,
        compare_reports,
        format_comparison,
        format_report,
        run_suite,
    )
    from repro.perf.kernels import KERNELS

    names = tuple(args.kernels.split(",")) if args.kernels else None
    if names:
        unknown = sorted(set(names) - set(KERNELS))
        if unknown:
            print(f"unknown kernels: {unknown} "
                  f"(choose from {', '.join(KERNELS)})", file=sys.stderr)
            return 2
    report = run_suite(
        names=names, scale=args.scale, repeat=args.repeat,
        warmup=args.warmup, progress=not args.quiet,
    )
    print(format_report(report))
    if args.out:
        report.write(args.out)
        print(f"perf report written to {args.out}")
    if args.write_baseline:
        path = args.baseline or "BENCH_perf.json"
        report.write(path)
        print(f"perf baseline written to {path}")
        return 0
    if args.baseline is not None:
        try:
            with open(args.baseline) as f:
                baseline = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"baseline {args.baseline} unreadable: {exc}",
                  file=sys.stderr)
            return EXIT_BASELINE_MISSING
        speedups, mismatches = compare_reports(baseline, report, only=names)
        print()
        print(format_comparison(speedups, mismatches))
        if mismatches:
            return EXIT_CHECKSUM_MISMATCH
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.bench.chaos import check_graceful, format_chaos, run_chaos
    from repro.exec import Executor

    if _reject_unknown_systems((args.system,)):
        return 2
    try:
        rates = tuple(float(r) for r in args.rates.split(","))
    except ValueError:
        rates = None
    if rates is None or any(not 0.0 <= r <= 1.0 for r in rates):
        print(f"invalid --rates {args.rates!r} (want comma-separated "
              f"floats in [0, 1])", file=sys.stderr)
        return 2
    with Executor(jobs=args.jobs) as executor:
        curve = run_chaos(
            workload=args.workload, system=args.system, rates=rates,
            scale=args.scale, seed=args.seed, plan_seed=args.plan_seed,
            executor=executor,
        )
    print(format_chaos(curve))
    problems = check_graceful(curve)
    if problems:
        print("\nRESILIENCE CHECK FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("\nresilience check: degradation is monotone and bounded; every "
          "injected fault was retried to success or accounted as degraded")
    return 0


def _load_tagged(path: str, load: float, multi: bool) -> str:
    """Insert a ``_load<g>`` tag before the extension for multi-load
    sweeps so every swept point gets its own artifact file."""
    if not multi:
        return path
    stem, dot, ext = path.rpartition(".")
    if dot:
        return f"{stem}_load{load:g}.{ext}"
    return f"{path}_load{load:g}"


def _serve_span_reports(args: argparse.Namespace, curve, loads) -> int:
    """Span-derived artifacts and reports for a traced serve sweep."""
    from repro.obs.export import write_serve_trace
    from repro.obs.series import request_series, serve_windows
    from repro.obs.spans import (
        format_tail_attribution,
        reconcile_spans,
        tail_attribution,
    )
    from repro.serve import ServeResult

    results = [ServeResult.from_dict(data) for data in curve.results]
    for load, result in zip(loads, results):
        assert result.spans is not None
        problems = reconcile_spans(result.spans, result)
        if problems:
            print(f"\nSPAN TREES DO NOT RECONCILE at load {load:g}:",
                  file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
    multi = len(results) > 1
    for load, result in zip(loads, results):
        log = result.spans
        if args.spans_out:
            path = _load_tagged(args.spans_out, load, multi)
            write_serve_trace(log, path, meta={
                "workload": curve.workload, "system": curve.system,
                "load": load, "balancer": curve.balancer,
            })
            print(f"span trace for load {load:g} written to {path} "
                  f"(open at https://ui.perfetto.dev)")
        if args.series_out:
            path = _load_tagged(args.series_out, load, multi)
            request_series(log.completions(),
                           windows=args.windows).write_csv(path)
            print(f"completion series for load {load:g} written to {path}")
        if args.windows_out:
            path = _load_tagged(args.windows_out, load, multi)
            serve_windows(log, windows=args.windows,
                          tiles=curve.tiles).write_csv(path)
            print(f"windowed metrics for load {load:g} written to {path}")
    hottest = results[-1]
    print()
    print(format_tail_attribution(
        tail_attribution(hottest.spans, args.tail_pct),
        title=f"p{args.tail_pct:g} tail attribution at load {loads[-1]:g} "
              f"(spans reconcile exactly with end-to-end latency)"))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.bench.serve import (
        EXIT_BASELINE_MISSING,
        EXIT_REGRESSED,
        check_serve_baseline,
        curve_to_baseline,
        format_serve,
        format_slo,
        load_baseline,
        run_serve_sweep,
        write_baseline,
    )
    from repro.exec import Executor

    if _reject_unknown_systems((args.system,)):
        return 2
    try:
        loads = tuple(float(v) for v in args.loads.split(","))
    except ValueError:
        loads = ()
    if not loads or any(not v > 0 for v in loads):
        print(f"invalid --loads {args.loads!r} (want comma-separated "
              f"positive floats)", file=sys.stderr)
        return 2
    skew: tuple[float, ...] = ()
    if args.skew:
        try:
            skew = tuple(float(v) for v in args.skew.split(","))
        except ValueError:
            skew = ()
        if len(skew) != args.tiles or any(not v > 0 for v in skew):
            print(f"invalid --skew {args.skew!r} (want {args.tiles} "
                  f"comma-separated positive floats)", file=sys.stderr)
            return 2
    trace = bool(args.trace or args.spans_out or args.series_out
                 or args.windows_out)
    with Executor(jobs=args.jobs) as executor:
        curve = run_serve_sweep(
            workload=args.workload, system=args.system, loads=loads,
            scale=args.scale, seed=args.seed, users=args.users,
            tiles=args.tiles, balancer=args.balancer,
            duration_ms=args.duration_ms, requests_per_min=args.rpm,
            tile_speedups=skew, executor=executor,
            trace=trace, keep_results=trace or args.slo is not None,
        )
    print(format_serve(curve))
    if trace:
        rc = _serve_span_reports(args, curve, loads)
        if rc:
            return rc
    if args.slo is not None:
        from repro.serve.slo import SLObjective

        try:
            objective = SLObjective(args.slo, args.slo_target)
        except ValueError as exc:
            print(f"invalid SLO: {exc}", file=sys.stderr)
            return 2
        print()
        print(format_slo(curve, objective))
        if trace:
            from repro.bench.format import render_table
            from repro.serve import ServeResult
            from repro.serve.slo import windowed_slo

            hottest = ServeResult.from_dict(curve.results[-1])
            burn = windowed_slo(hottest.spans, objective, windows=10)
            print()
            print(render_table(
                burn.columns,
                [[cell if not isinstance(cell, float) else round(cell, 3)
                  for cell in row] for row in burn.rows],
                f"Error-budget burn over windows at load {loads[-1]:g}",
            ))
    if args.json:
        import json

        with open(args.json, "w") as f:
            json.dump(curve_to_baseline(curve), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"curve data written to {args.json}")
    if args.write_baseline:
        path = args.baseline or "BENCH_serve.json"
        write_baseline(curve, path)
        print(f"serve baseline written to {path}")
        return 0
    if args.baseline is not None:
        baseline = load_baseline(args.baseline)
        if baseline is None:
            print(f"baseline {args.baseline} missing or unreadable",
                  file=sys.stderr)
            return EXIT_BASELINE_MISSING
        problems = check_serve_baseline(curve, baseline)
        if problems:
            print("\nSATURATION CURVE REGRESSED vs baseline:",
                  file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return EXIT_REGRESSED
        print("\nbaseline check: curve matches the committed saturation "
              "curve (knee and SLO metrics within tolerance)")
    return 0


def cmd_ablation(args: argparse.Namespace) -> int:
    from repro.bench import ablation

    workload = build_workload(args.workload, scale=args.scale)
    print(ablation.format_geometry(ablation.run_geometry_sweep(workload)))
    print()
    print(ablation.format_shared_vs_private(
        ablation.run_shared_vs_private(workload)))
    print()
    print(ablation.format_toggles(ablation.run_mechanism_toggles(workload)))
    return 0


def cmd_policy(args: argparse.Namespace) -> int:
    from repro.bench import policy_lab

    argv = [
        "--policies", args.policies,
        "--workloads", args.workloads,
        "--scale", str(args.scale),
        "--seed", str(args.seed),
        "--jobs", str(args.jobs),
        "--system", args.system,
        "--baseline", args.baseline,
    ]
    if args.no_tuned:
        argv.append("--no-tuned")
    if args.json:
        argv.append("--json")
    if args.write_baseline:
        argv.append("--write-baseline")
    if args.check:
        argv.append("--check")
    if args.baseline_rtol is not None:
        argv += ["--baseline-rtol", str(args.baseline_rtol)]
    return policy_lab.main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="METAL (ASPLOS'24) reproduction harness"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("workloads", help="list the Table-2 workloads")
    p.add_argument("--stats", action="store_true",
                   help="print sized record/walk counts and estimated "
                        "peak build memory per workload at --scale")
    p.add_argument("--scale", type=float, default=1.0,
                   help="scale for --stats sizing (250 = paper scale)")
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser(
        "run",
        help="dbworkload-style run modes: --max-rate throughput search, "
             "--schedule load profiles, --pipe trace replay (repro.modes)",
    )
    p.add_argument("workload", choices=sorted(WORKLOAD_BUILDERS))
    mode = p.add_mutually_exclusive_group(required=True)
    mode.add_argument("--max-rate", action="store_true",
                      help="binary-search the highest sustainable "
                           "offered load of the serving topology")
    mode.add_argument("--schedule", type=str, default=None,
                      metavar="PROFILE",
                      help="offered-load profile: 'ramp:lo:hi:n' or "
                           "'step:l1,l2,...' (one serve phase per load)")
    mode.add_argument("--pipe", type=str, default=None, metavar="TRACE",
                      help="replay a captured walk trace (trace_io JSONL, "
                           ".gz ok) through --system")
    p.add_argument("--system", default="metal",
                   help="memory system to drive (default: metal)")
    p.add_argument("--scale", type=float, default=0.05,
                   help="workload scale (serve modes default 0.05; pipe "
                        "replay needs the scale the trace was captured at)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--users", type=int, default=32,
                   help="mean active users (serve modes)")
    p.add_argument("--tiles", type=int, default=4,
                   help="tiles behind the load balancer (serve modes)")
    p.add_argument("--rpm", type=float, default=None,
                   help="requests/min per user (default: calibrated so "
                        "load 1.0 saturates the fleet)")
    p.add_argument("--duration-ms", type=int, default=5,
                   help="arrival horizon per probe/phase")
    p.add_argument("--balancer", default="round_robin",
                   choices=("round_robin", "least_loaded"))
    p.add_argument("--lo", type=float, default=0.1,
                   help="--max-rate bracket lower bound (load multiplier)")
    p.add_argument("--hi", type=float, default=2.0,
                   help="--max-rate bracket upper bound")
    p.add_argument("--iters", type=int, default=7,
                   help="--max-rate bisection steps after the bracket")
    p.add_argument("--max-util", type=float, default=0.9,
                   help="sustainable-utilization bound for --max-rate")
    p.add_argument("--slo-p99-ns", type=int, default=None,
                   help="optional p99 latency bound for --max-rate")
    p.add_argument("--jobs", type=str, default="1",
                   help="worker processes: a number or 'auto'")
    p.add_argument("--json", type=str, default=None,
                   help="write machine-readable run data to this file")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("compare", help="run one workload across systems")
    p.add_argument("workload", choices=sorted(WORKLOAD_BUILDERS))
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--systems", type=str, default=None,
                   help="comma-separated subset, e.g. stream,metal")
    p.add_argument("--cache-kb", type=int, default=None)
    p.add_argument("--engine", choices=("heap", "bucket"), default=None,
                   help="event engine (bucket = calendar queue; "
                        "byte-identical results)")
    p.add_argument("--walk-batch", type=int, default=None,
                   help="walks per vectorized batch (0 = scalar walks; "
                        "byte-identical results)")
    p.add_argument("--backend", choices=("object", "soa"), default=None,
                   help="index storage backend (soa enables batched "
                        "walk generation)")
    p.add_argument("--jobs", type=str, default="1",
                   help="worker processes: a number or 'auto'")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("report", help="regenerate every table and figure")
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--out", type=str, default=None)
    p.add_argument("--fast", action="store_true")
    p.add_argument("--json", type=str, default=None,
                   help="write machine-readable figure data to this file")
    p.add_argument("--baseline", type=str, default=None,
                   help="compare per-figure key metrics against this "
                        "baseline JSON; nonzero exit on regression")
    p.add_argument("--write-baseline", action="store_true",
                   help="(re)write the --baseline file from this run")
    p.add_argument("--baseline-rtol", type=float, default=None,
                   help="relative tolerance for baseline comparison "
                        "(default: the baseline file's stored tolerance)")
    p.add_argument("--jobs", type=str, default="1",
                   help="worker processes: a number or 'auto' (all cores)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore the on-disk result cache")
    p.add_argument("--cache-dir", type=str, default=None,
                   help="result cache root (default: $REPRO_CACHE_DIR "
                        "or .repro_cache)")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "perf", help="microbenchmark the simulator's hot paths"
    )
    p.add_argument("--scale", type=float, default=0.05,
                   help="kernel input scale (default 0.05; the committed "
                        "BENCH_perf.json baseline uses this scale)")
    p.add_argument("--repeat", type=int, default=5,
                   help="timed repetitions per kernel (median reported)")
    p.add_argument("--warmup", type=int, default=1,
                   help="discarded warmup runs per kernel")
    p.add_argument("--kernels", type=str, default=None,
                   help="comma-separated kernel subset")
    p.add_argument("--out", type=str, default=None,
                   help="write the JSON report to this path")
    p.add_argument("--baseline", type=str, nargs="?",
                   const="BENCH_perf.json", default=None,
                   help="compare against this baseline report (bare "
                        "--baseline means BENCH_perf.json); exits nonzero "
                        "on checksum mismatch, timings are informational")
    p.add_argument("--write-baseline", action="store_true",
                   help="(re)write the --baseline file from this run")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-kernel progress on stderr")
    p.set_defaults(func=cmd_perf)

    p = sub.add_parser(
        "chaos",
        help="fault-injection resilience curve (repro.faults)",
    )
    p.add_argument("workload", choices=sorted(WORKLOAD_BUILDERS))
    p.add_argument("--system", default="metal",
                   help="memory system to stress (default: metal)")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=0,
                   help="workload generator seed")
    p.add_argument("--plan-seed", type=int, default=0,
                   help="fault-schedule seed (same seed => same faults)")
    p.add_argument("--rates", type=str, default="0.0,0.01,0.02,0.05,0.1",
                   help="comma-separated per-opportunity fault rates")
    p.add_argument("--jobs", type=str, default="1",
                   help="worker processes: a number or 'auto'")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "serve",
        help="open-loop serving load sweep with saturation knee "
             "(repro.serve)",
    )
    p.add_argument("workload", choices=sorted(WORKLOAD_BUILDERS))
    p.add_argument("--system", default="metal",
                   help="memory system each tile runs (default: metal)")
    p.add_argument("--scale", type=float, default=0.05,
                   help="workload scale of the per-tile backend simulation")
    p.add_argument("--seed", type=int, default=0,
                   help="master seed (population, arrival streams)")
    p.add_argument("--users", type=int, default=32,
                   help="mean active users (Poisson population)")
    p.add_argument("--rpm", type=float, default=None,
                   help="requests/min per user (default: calibrate so "
                        "load 1.0 saturates the fleet)")
    p.add_argument("--tiles", type=int, default=4,
                   help="tiles behind the load balancer")
    p.add_argument("--balancer", default="round_robin",
                   choices=("round_robin", "least_loaded"))
    p.add_argument("--skew", type=str, default=None,
                   help="comma-separated per-tile speed multipliers "
                        "(skewed-fleet balancer studies)")
    p.add_argument("--duration-ms", type=int, default=5,
                   help="arrival-generation horizon per swept load")
    p.add_argument("--loads", type=str,
                   default="0.2,0.4,0.6,0.8,0.9,1.0,1.1,1.3",
                   help="comma-separated offered-load multipliers")
    p.add_argument("--jobs", type=str, default="1",
                   help="worker processes: a number or 'auto'")
    p.add_argument("--json", type=str, default=None,
                   help="write machine-readable curve data to this file")
    p.add_argument("--baseline", type=str, nargs="?",
                   const="BENCH_serve.json", default=None,
                   help="compare against this committed saturation curve "
                        "(bare --baseline means BENCH_serve.json); exit 2 "
                        "if missing, 3 on regression")
    p.add_argument("--write-baseline", action="store_true",
                   help="(re)write the --baseline file from this sweep")
    p.add_argument("--trace", action="store_true",
                   help="record request span trees at every load point "
                        "and print the tail-latency attribution")
    p.add_argument("--slo", type=int, default=None, metavar="NS",
                   help="latency objective in ns; print attainment and "
                        "error-budget burn per load point (with spans, "
                        "also burn over time at the hottest load)")
    p.add_argument("--slo-target", type=float, default=0.99,
                   help="required attainment fraction (default 0.99)")
    p.add_argument("--spans-out", type=str, default=None, metavar="PATH",
                   help="write a Perfetto-loadable Chrome trace of the "
                        "request spans (implies --trace; multi-load "
                        "sweeps get a _load<x> tag per point)")
    p.add_argument("--series-out", type=str, default=None, metavar="PATH",
                   help="write the completion time series CSV "
                        "(repro.obs.series.request_series; implies "
                        "--trace)")
    p.add_argument("--windows-out", type=str, default=None, metavar="PATH",
                   help="write windowed serving metrics CSV — throughput, "
                        "p50/p99, queue depths, per-tile utilization "
                        "(repro.obs.series.serve_windows; implies --trace)")
    p.add_argument("--windows", type=int, default=50,
                   help="window count for --series-out/--windows-out")
    p.add_argument("--tail-pct", type=float, default=99.0,
                   help="percentile cutoff for the tail attribution "
                        "report (default 99)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "policy",
        help="replacement-policy lab: sweep policies x workloads, "
             "Pareto (hit-rate vs tag-energy), BENCH_policy.json gate",
    )
    p.add_argument("--policies", default="",
                   help="comma list; default = every registered policy")
    p.add_argument("--workloads",
                   default=",".join(
                       ("scan", "select", "sets_s", "rtree")))
    p.add_argument("--scale", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", default="1")
    p.add_argument("--system", default="metal", choices=("metal", "metal_ix"))
    p.add_argument("--no-tuned", action="store_true",
                   help="skip the auto-tuned default-policy cells")
    p.add_argument("--json", action="store_true")
    p.add_argument("--baseline", default="BENCH_policy.json")
    p.add_argument("--write-baseline", action="store_true")
    p.add_argument("--check", action="store_true",
                   help="compare against --baseline; exit 2 missing, 3 regressed")
    p.add_argument("--baseline-rtol", type=float, default=None)
    p.set_defaults(func=cmd_policy)

    p = sub.add_parser("ablation", help="design-choice ablations")
    p.add_argument("--workload", default="scan", choices=sorted(WORKLOAD_BUILDERS))
    p.add_argument("--scale", type=float, default=0.25)
    p.set_defaults(func=cmd_ablation)

    p = sub.add_parser("trace", help="run one workload with event tracing")
    p.add_argument("workload", choices=sorted(WORKLOAD_BUILDERS))
    p.add_argument("--system", default="metal",
                   help="memory system to trace (default: metal)")
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cache-kb", type=int, default=None)
    p.add_argument("--buffer", type=int, default=1 << 20,
                   help="tracer ring-buffer capacity in events")
    p.add_argument("--out", type=str, default=None,
                   help="Chrome trace output path "
                        "(default: trace_<workload>_<system>.json)")
    p.add_argument("--jsonl", type=str, default=None,
                   help="also export raw events as JSONL to this path")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "profile",
        help="cycle attribution, latency percentiles, and time series",
    )
    p.add_argument("workload", choices=sorted(WORKLOAD_BUILDERS))
    p.add_argument("--system", default="metal",
                   help="memory system to profile (default: metal)")
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cache-kb", type=int, default=None)
    p.add_argument("--buffer", type=int, default=1 << 20,
                   help="tracer ring-buffer capacity in events")
    p.add_argument("--walk-interval", type=int, default=64,
                   help="gen-series sampling interval in walks")
    p.add_argument("--out-prefix", type=str, default=None,
                   help="output prefix for CSV/OpenMetrics files "
                        "(default: profile_<workload>_<system>)")
    p.set_defaults(func=cmd_profile)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
