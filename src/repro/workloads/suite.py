"""The eight Table-2 applications as ready-to-simulate workloads.

Each builder constructs the index substrate, the walk-request stream, and a
*descriptor factory* (descriptors are stateful, so every memory-system run
gets a fresh one). Default sizes are ~100x below the paper's (DESIGN.md);
``scale`` multiplies record and walk counts, and :data:`PAPER_SCALE` marks
the multiplier where the scan index reaches the paper's 10M keys.

Key sequences come from chunked :class:`~repro.workloads.stream.KeyStream`
generators that replicate the eager ``keygen`` lists bit for bit (the
committed baselines pin this), so building a paper-scale workload never
materializes a 10M-element Python list. The B+tree-backed workloads
(scan / select / where / join) additionally accept ``backend="soa"`` to
store the index as per-level numpy arrays (:mod:`repro.indexes.soa`) with
a byte-identical address layout, and ``max_walks`` to cap the request
stream to an exact prefix — together these are what make 1x-scale runs
fit in RAM.

Table 2 mapping:

=========  ========  ==========================  ===============
Workload   DSA       Index                       Pattern
=========  ========  ==========================  ===============
scan       Gorgon    B+tree (table)              Level
sets       Gorgon    hash of skip lists          Node
sets_s     Gorgon    shallow hash (many buckets) Node
spmm       Capstan   dynamic sparse tensor       Node (leaf+life)
spmm_s     Capstan   shallow fibers              Node (leaf+life)
select     Gorgon    B+tree (table)              Level
where      Gorgon    B+tree (table)              Level
join       Gorgon    two B+trees                 Level
rtree      Aurochs   BTree-x + BTree-y           Level + Branch
pagerank   Aurochs   adjacency list              Node + Branch
=========  ========  ==========================  ===============
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.descriptors import (
    BranchDescriptor,
    CompositeDescriptor,
    LevelDescriptor,
    NodeDescriptor,
    ReuseDescriptor,
)
from repro.dsa.aurochs import Aurochs, PAGERANK_CONFIG, RTREE_CONFIG
from repro.dsa.capstan import Capstan, SPMM_CONFIG
from repro.dsa.config import DSAConfig
from repro.dsa.gorgon import ANALYTICS_CONFIG, Gorgon, SCAN_CONFIG, SETS_CONFIG
from repro.indexes.adjacency import AdjacencyList
from repro.indexes.base import count_blocks
from repro.indexes.bplustree import BPlusTree
from repro.indexes.fiber import FiberMatrix
from repro.indexes.rtree import RTree2D
from repro.indexes.soa import SoARecordTable
from repro.indexes.sorted_set import SortedSet
from repro.indexes.sparse_tensor import DynamicSparseTensor
from repro.indexes.table import RecordTable
from repro.sim.metrics import WalkRequest
from repro.workloads.graphs import powerlaw_edges
from repro.workloads.matrices import inner_product_rows, powerlaw_coo
from repro.workloads.spatial import clustered_rects
from repro.workloads.stream import KeyStream, range_spans

DescriptorFactory = Callable[[], "ReuseDescriptor | dict[int, ReuseDescriptor]"]

#: ``scale`` at which the scan workload's index reaches the paper's 10M
#: keys (Table 2); the scale sweep's 1x point.
PAPER_SCALE = 250.0


def scaled(count: int, scale: float, floor: int) -> int:
    """Scale a default-size count, never below its floor.

    Every builder sizes records and walks as ``max(floor, count * scale)``;
    the floor keeps tiny scales above the structural minimum (an index
    must still have enough keys to reach its target depth).
    """
    return max(floor, int(count * scale))


@dataclass
class Workload:
    """One application ready for the simulator."""

    name: str
    dsa: str
    pattern: str
    config: DSAConfig
    requests: list[WalkRequest]
    indexes: list[Any]
    descriptor_factory: DescriptorFactory
    default_cache_bytes: int = 8 * 1024
    #: Size of the raw key space (for IX-cache key-block sizing).
    key_universe: int = 1 << 20
    #: Key-block bits override for the IX-cache. Node-pattern workloads use
    #: small blocks (Fig. 8's b=4 style) so neighbouring leaves spread
    #: across sets; level-pattern workloads leave this None and size blocks
    #: from the key universe so mid-level nodes stay set-resident.
    ix_key_block_bits: int | None = None
    notes: str = ""
    #: Build provenance, stamped by :func:`build_workload` — lets the run
    #: pipeline reconstruct this workload in a worker process from its
    #: registry name alone. Workloads built by calling a ``build_*``
    #: function directly carry the defaults (1.0, 0) only if those were
    #: the arguments actually used.
    scale: float = 1.0
    seed: int = 0
    _blocks: int | None = field(default=None, repr=False)

    @property
    def total_index_blocks(self) -> int:
        if self._blocks is None:
            total = 0
            for index in self.indexes:
                # SoA indexes count blocks from their level arrays (the
                # node-view iteration would materialize every node).
                fast = getattr(index, "total_blocks_fast", None)
                total += fast() if fast is not None else count_blocks(index.nodes())
            self._blocks = total
        return self._blocks

    def faopt_pairs(self) -> list[tuple[Any, int]]:
        """(index, key) sequence for the FA-OPT two-pass construction."""
        return [(r.index, r.key) for r in self.requests]


def _depth_fanout(num_keys: int, depth: int) -> int:
    return BPlusTree.fanout_for_depth(num_keys, depth)


def _make_table(
    num_records: int, depth: int, seed: int = 0, backend: str = "object"
) -> RecordTable | SoARecordTable:
    fanout = _depth_fanout(num_records, depth)
    if backend == "soa":
        ids = np.arange(num_records, dtype=np.int64)
        arrays = {
            "id": ids,
            "value": (ids * 2654435761) % 1_000_003,
            "group": ids % 97,
        }
        return SoARecordTable(("id", "value", "group"), "id", arrays, fanout=fanout)
    if backend != "object":
        raise ValueError(f"unknown table backend {backend!r}")
    records = (
        {"id": k, "value": (k * 2654435761) % 1_000_003, "group": k % 97}
        for k in range(num_records)
    )
    return RecordTable.from_records(("id", "value", "group"), "id", records, fanout=fanout)



def _level_descriptor(height: int) -> LevelDescriptor:
    """Wide frontier-growth band (see build_scan) used by Level workloads."""
    return LevelDescriptor(
        start=0, end=height - 1, min_level=0, max_level=height - 1, low_utility=0.5
    )


def _sweep_band(height: int) -> LevelDescriptor:
    """Non-frontier band for bursty sweeps: reuse follows first touch."""
    return LevelDescriptor(
        start=0, end=height - 1, min_level=0, max_level=height - 1,
        low_utility=0.5, min_touches=1, frontier=False,
    )

# --------------------------------------------------------------------- #
# Scan (Gorgon, Level pattern)
# --------------------------------------------------------------------- #

def build_scan(
    scale: float = 1.0,
    seed: int = 0,
    backend: str = "object",
    max_walks: int | None = None,
) -> Workload:
    """Random-search point lookups over a deep B+tree (Table 2: Scan).

    Table 2 uses a 10-level, 10M-key B+tree; the default scale keeps the
    10-level depth at ~100x fewer keys by shrinking the fan-out, and
    ``scale=PAPER_SCALE`` with ``backend="soa"`` reproduces the paper's
    size in-RAM. ``max_walks`` truncates the Zipf key stream to an exact
    prefix (the full-stream rank permutation is preserved), bounding
    simulation time independently of index size.
    """
    num_records = scaled(40_000, scale, 2_000)
    num_walks = scaled(8_000, scale, 500)
    table = _make_table(num_records, depth=10, seed=seed, backend=backend)
    gorgon = Gorgon(SCAN_CONFIG)
    keys = KeyStream.zipf(num_records, num_walks, skew=0.8, seed=seed)
    if max_walks is not None:
        keys = keys.head(max_walks)
    requests = gorgon.scan_requests(table, keys)
    height = table.height

    def descriptors() -> ReuseDescriptor:
        # Wide band with frontier growth: walks extend the cached region
        # one level below each IX-cache hit, so utility eviction shapes a
        # popularity-weighted frontier (hot branches reach the leaves, cold
        # branches keep mid-level reach).
        return _level_descriptor(height)

    return Workload(
        "scan", "gorgon", "level", SCAN_CONFIG, requests, [table], descriptors,
        default_cache_bytes=8 * 1024, key_universe=num_records,
        notes=f"{num_records} records, depth {height}, zipf 0.8 point lookups",
    )


# --------------------------------------------------------------------- #
# Sorted Sets (Gorgon, Node pattern) — deep and shallow variants
# --------------------------------------------------------------------- #

def build_sets(scale: float = 1.0, seed: int = 0, deep: bool = True) -> Workload:
    """Redis-style sorted-set lookups (Table 2: Sets / Sets-S)."""
    num_records = scaled(20_000, scale, 1_000)
    num_walks = scaled(8_000, scale, 500)
    score_space = 1 << 20
    if deep:
        num_buckets, max_height = 4, 14
    else:
        # "low associativity hash-table" — many buckets, short lists.
        num_buckets, max_height = max(64, num_records // 8), 3
    sset = SortedSet(
        score_space, num_buckets=num_buckets, max_height=max_height, seed=seed
    )
    rng_scores = KeyStream.zipf(score_space, num_records, skew=0.0, seed=seed + 1)
    scores = sorted(set(rng_scores))
    for i, score in enumerate(scores):
        sset.add(f"member-{i}", score)
    lookups = KeyStream.zipf(len(scores), num_walks, skew=0.9, seed=seed + 2)
    gorgon = Gorgon(SETS_CONFIG)
    compute = gorgon.config.compute_cycles_per_walk
    requests = [
        WalkRequest(sset, scores[i], compute_cycles=compute) for i in lookups
    ]
    height = sset.height

    def descriptors() -> ReuseDescriptor:
        # The node pattern over skip segments: utility selection inside a
        # first-touch band realizes "cache the skip node located closest
        # to the median point" — hot segments accumulate utility and stay.
        # (A hard node-level target underperforms at reduced scale; see
        # EXPERIMENTS.md.)
        return _sweep_band(height)

    name = "sets" if deep else "sets_s"
    return Workload(
        name, "gorgon", "node", SETS_CONFIG, requests, [sset], descriptors,
        key_universe=score_space,
        notes=f"{len(scores)} records, {num_buckets} buckets, height {height}",
    )


# --------------------------------------------------------------------- #
# SpMM (Capstan, Node pattern) — deep tensors and shallow fibers
# --------------------------------------------------------------------- #

def build_spmm(scale: float = 1.0, seed: int = 0, deep: bool = True) -> Workload:
    """Inner-product SpMM over B's coordinate index (Table 2: SpMM)."""
    dim = scaled(8_192, scale, 512)
    nnz = scaled(60_000, scale, 4_000)
    num_a_rows = scaled(2_000, scale, 150)
    triples = powerlaw_coo((dim, dim), nnz, col_skew=0.9, seed=seed)
    b: DynamicSparseTensor | FiberMatrix
    if deep:
        fanout = _depth_fanout(dim, 8)
        b = DynamicSparseTensor.from_coo((dim, dim), triples, fanout=fanout)
    else:
        b = FiberMatrix((dim, dim), triples)
    a_rows = inner_product_rows(num_a_rows, 12, dim, bandwidth=96, col_skew=0.9, seed=seed + 1)
    capstan = Capstan(SPMM_CONFIG)
    requests = capstan.spmm_requests(a_rows, b)

    height = b.height

    def descriptors() -> ReuseDescriptor:
        # Node pattern pins leaves for the burst of accesses their columns
        # receive ("life is set to the number of non-zeros in each
        # column", capped to the per-walk burst), over a sweep band that
        # keeps mid nodes for the band's cold edge.
        return CompositeDescriptor(
            [NodeDescriptor(target="leaf", life=2), _sweep_band(height)]
        )

    name = "spmm" if deep else "spmm_s"
    return Workload(
        name, "capstan", "node", SPMM_CONFIG, requests, [b], descriptors,
        key_universe=dim,
        ix_key_block_bits=4,
        notes=f"B {dim}x{dim}, nnz {b.nnz}, height {b.height}",
    )


# --------------------------------------------------------------------- #
# Analytics: Nest.SEL / WHERE / JOIN (Gorgon, Level pattern)
# --------------------------------------------------------------------- #

def build_analytics_select(
    scale: float = 1.0,
    seed: int = 0,
    backend: str = "object",
    max_walks: int | None = None,
) -> Workload:
    """Nested SELECT BETWEEN range queries (Fig. 18: Nest.SEL)."""
    num_records = scaled(40_000, scale, 1_000)
    num_queries = scaled(2_500, scale, 200)
    table = _make_table(num_records, depth=8, seed=seed, backend=backend)
    gorgon = Gorgon(ANALYTICS_CONFIG)
    starts = KeyStream.zipf(num_records, num_queries, skew=0.8, seed=seed)
    if max_walks is not None:
        starts = starts.head(max_walks)
    ranges = range_spans(starts, span=16, universe=num_records)
    requests = gorgon.select_requests(table, ranges)
    height = table.height

    def descriptors() -> ReuseDescriptor:
        return _level_descriptor(height)

    return Workload(
        "select", "gorgon", "level", ANALYTICS_CONFIG, requests, [table], descriptors,
        key_universe=num_records,
        notes=f"{num_records} records, {num_queries} BETWEEN queries of span 16",
    )


def build_analytics_where(
    scale: float = 1.0,
    seed: int = 0,
    backend: str = "object",
    max_walks: int | None = None,
) -> Workload:
    """Data-dependent WHERE-clause probes (Fig. 18: WHERE)."""
    num_records = scaled(40_000, scale, 1_000)
    num_walks = scaled(6_000, scale, 500)
    table = _make_table(num_records, depth=8, seed=seed, backend=backend)
    gorgon = Gorgon(ANALYTICS_CONFIG)
    # Nested clause: the probed key is derived from the previous record's
    # value column (data-dependent chain, zipf-seeded).
    seeds = KeyStream.zipf(num_records, num_walks, skew=0.7, seed=seed)
    if max_walks is not None:
        seeds = seeds.head(max_walks)
    keys = []
    key = seeds.first()
    for s in seeds:
        record = table.get(key)
        key = (record["value"] + s) % num_records if record else s
        keys.append(key)
    requests = gorgon.scan_requests(table, keys)
    height = table.height

    def descriptors() -> ReuseDescriptor:
        return _level_descriptor(height)

    return Workload(
        "where", "gorgon", "level", ANALYTICS_CONFIG, requests, [table], descriptors,
        key_universe=num_records,
        notes=f"{num_records} records, {num_walks} data-dependent probes",
    )


def build_analytics_join(
    scale: float = 1.0, seed: int = 0, depth: int = 8, backend: str = "object"
) -> Workload:
    """Index nested-loop JOIN over two B+trees (Fig. 18: JOIN).

    ``depth`` controls the inner tree's level count (Fig. 23b sweeps it
    10-18 in the paper; deeper means a smaller fan-out here).
    """
    inner_records = scaled(40_000, scale, 1_000)
    outer_records = scaled(6_000, scale, 400)
    inner = _make_table(inner_records, depth=depth, seed=seed, backend=backend)
    fk_stream = KeyStream.zipf(inner_records, outer_records, skew=0.85, seed=seed + 1)
    outer_fanout = _depth_fanout(outer_records, 6)
    if backend == "soa":
        outer = SoARecordTable(
            ("id", "fk"),
            "id",
            {
                "id": np.arange(outer_records, dtype=np.int64),
                "fk": np.concatenate(list(fk_stream.chunks())),
            },
            fanout=outer_fanout,
        )
    else:
        outer = RecordTable.from_records(
            ("id", "fk"),
            "id",
            ({"id": i, "fk": fk} for i, fk in enumerate(fk_stream)),
            fanout=outer_fanout,
        )
    gorgon = Gorgon(ANALYTICS_CONFIG)
    compute = gorgon.config.compute_cycles_per_walk
    # The join touches both trees: walk the outer index for the record,
    # then probe the inner index with the foreign key.
    requests: list[WalkRequest] = []
    for record in outer.scan():
        requests.append(WalkRequest(outer, record["id"], compute_cycles=compute))
        requests.append(
            WalkRequest(
                inner,
                record["fk"],
                compute_cycles=compute,
                data_address=inner.record_address(record["fk"]),
                data_bytes=inner.record_bytes,
            )
        )
    inner_height, outer_height = inner.height, outer.height

    def descriptors() -> dict[int, ReuseDescriptor]:
        return {
            inner.index_id: _level_descriptor(inner_height),
            outer.index_id: _level_descriptor(outer_height),
        }

    return Workload(
        "join", "gorgon", "level", ANALYTICS_CONFIG, requests, [inner, outer],
        descriptors, key_universe=inner_records,
        notes=f"outer {outer_records} x inner {inner_records}, zipf 0.85 FKs",
    )


# --------------------------------------------------------------------- #
# R-tree spatial analysis (Aurochs, Level + Branch)
# --------------------------------------------------------------------- #

def build_rtree(scale: float = 1.0, seed: int = 0) -> Workload:
    """Quadrilateral embedding over paired x/y B-trees (§4.3)."""
    num_rects = scaled(20_000, scale, 1_000)
    num_queries = scaled(2_000, scale, 200)
    universe = 1 << 20
    rects = clustered_rects(num_rects, universe=universe, seed=seed)
    rtree = RTree2D(
        rects,
        x_fanout=_depth_fanout(num_rects, 8),
        y_fanout=_depth_fanout(num_rects, 6),
    )
    xs = sorted({r.x_lo for r in rects})
    query_idx = KeyStream.clustered(len(xs), num_queries, num_clusters=6, seed=seed + 1)
    x_queries = [xs[i] for i in query_idx]
    aurochs = Aurochs(RTREE_CONFIG)
    requests = aurochs.rtree_requests(rtree, x_queries, y_per_x=4)
    xh, yh = rtree.x_tree.height, rtree.y_tree.height

    def descriptors() -> dict[int, ReuseDescriptor]:
        return {
            rtree.x_tree.index_id: _level_descriptor(xh),
            rtree.y_tree.index_id: CompositeDescriptor(
                [
                    BranchDescriptor(depth=yh - 1, window=256),
                    _level_descriptor(yh),
                ]
            ),
        }

    return Workload(
        "rtree", "aurochs", "level+branch", RTREE_CONFIG, requests,
        [rtree.x_tree, rtree.y_tree], descriptors, key_universe=universe,
        ix_key_block_bits=8,
        notes=f"{num_rects} rects, x-tree depth {xh}, y-tree depth {yh}",
    )


# --------------------------------------------------------------------- #
# PageRank-push (Aurochs, Node + Branch)
# --------------------------------------------------------------------- #

def build_pagerank(scale: float = 1.0, seed: int = 0) -> Workload:
    """Push-style PageRank: walks to the destination vertex per edge."""
    num_vertices = scaled(20_000, scale, 1_000)
    num_edges = scaled(50_000, scale, 3_000)
    num_pushes = scaled(10_000, scale, 500)
    edges = powerlaw_edges(num_vertices, num_edges, skew=0.9, seed=seed)
    graph = AdjacencyList(
        edges, num_vertices=num_vertices, fanout=_depth_fanout(num_vertices, 8)
    )
    aurochs = Aurochs(PAGERANK_CONFIG)
    compute = aurochs.config.compute_cycles_per_walk
    # Pushes land on edge destinations (zipf-hub heavy); each push walks
    # the vertex directory for the destination's record.
    dsts = [d for _, d in edges]
    rng = KeyStream.zipf(len(dsts), num_pushes, skew=0.0, seed=seed + 1)
    requests = []
    for i in rng:
        v = dsts[i]
        record = graph.record(v)
        requests.append(
            WalkRequest(
                graph,
                v,
                compute_cycles=compute,
                data_address=record.address if record else None,
            )
        )
    height = graph.height

    def descriptors() -> ReuseDescriptor:
        # Hub leaves (Node) plus a sweep band; the Branch member tracks the
        # hub cluster around the moving key median.
        return CompositeDescriptor(
            [
                NodeDescriptor(target="leaf", life=1),
                BranchDescriptor(depth=height - 1, window=512),
                _sweep_band(height),
            ],
            mode="any",
        )

    return Workload(
        "pagerank", "aurochs", "node+branch", PAGERANK_CONFIG, requests, [graph],
        descriptors, key_universe=num_vertices,
        ix_key_block_bits=4,
        notes=f"{num_vertices} vertices, {len(edges)} edges, {num_pushes} pushes",
    )


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

WORKLOAD_BUILDERS: dict[str, Callable[..., Workload]] = {
    "scan": build_scan,
    "sets": lambda scale=1.0, seed=0, **kw: build_sets(scale, seed, deep=True, **kw),
    "sets_s": lambda scale=1.0, seed=0, **kw: build_sets(scale, seed, deep=False, **kw),
    "spmm": lambda scale=1.0, seed=0, **kw: build_spmm(scale, seed, deep=True, **kw),
    "spmm_s": lambda scale=1.0, seed=0, **kw: build_spmm(scale, seed, deep=False, **kw),
    "select": build_analytics_select,
    "where": build_analytics_where,
    "join": build_analytics_join,
    "rtree": build_rtree,
    "pagerank": build_pagerank,
}

#: Each workload's DSAConfig without building the workload — the run
#: pipeline needs Table-2 intensities (ops/compute, tile counts) for
#: energy folds and tile-scaled SimParams before any worker has built
#: the index structures.
WORKLOAD_CONFIGS: dict[str, DSAConfig] = {
    "scan": SCAN_CONFIG,
    "sets": SETS_CONFIG,
    "sets_s": SETS_CONFIG,
    "spmm": SPMM_CONFIG,
    "spmm_s": SPMM_CONFIG,
    "select": ANALYTICS_CONFIG,
    "where": ANALYTICS_CONFIG,
    "join": ANALYTICS_CONFIG,
    "rtree": RTREE_CONFIG,
    "pagerank": PAGERANK_CONFIG,
}

#: Fig. 18's x-axis labels for each workload key.
PAPER_LABELS = {
    "scan": "Scan",
    "sets": "Sets",
    "sets_s": "Sets-S",
    "spmm": "SpMM",
    "spmm_s": "SpMM-S",
    "select": "Nest.SEL",
    "where": "WHERE",
    "join": "JOIN",
    "rtree": "RTree",
    "pagerank": "PageRank",
}

#: Declarative sizing per workload: dimension -> (count at scale 1.0,
#: floor). The "records" row sizes the primary index; "walks" sizes the
#: request-driving sequence (for join the request count is 2x the outer
#: table; rtree queries expand ~5x into walk requests). The ``--stats``
#: CLI reads this table, so reported counts match built counts by
#: construction.
WORKLOAD_SIZINGS: dict[str, dict[str, tuple[int, int]]] = {
    "scan": {"records": (40_000, 2_000), "walks": (8_000, 500)},
    "sets": {"records": (20_000, 1_000), "walks": (8_000, 500)},
    "sets_s": {"records": (20_000, 1_000), "walks": (8_000, 500)},
    "spmm": {"dim": (8_192, 512), "nnz": (60_000, 4_000), "walks": (2_000, 150)},
    "spmm_s": {"dim": (8_192, 512), "nnz": (60_000, 4_000), "walks": (2_000, 150)},
    "select": {"records": (40_000, 1_000), "walks": (2_500, 200)},
    "where": {"records": (40_000, 1_000), "walks": (6_000, 500)},
    "join": {"records": (40_000, 1_000), "outer": (6_000, 400)},
    "rtree": {"records": (20_000, 1_000), "walks": (2_000, 200)},
    "pagerank": {"records": (20_000, 1_000), "edges": (50_000, 3_000), "walks": (10_000, 500)},
}

#: Workloads whose primary index supports ``backend="soa"``.
SOA_WORKLOADS = frozenset({"scan", "select", "where", "join"})

#: Measured Python-object cost per indexed record for the object-path
#: B+tree substrate (IndexNode + boxed keys + record dict + request
#: overheads), used for the --stats peak-memory estimate.
_OBJECT_BYTES_PER_RECORD = 700
#: SoA cost per record: key array + column arrays (int64 each) + the
#: ~40B/node level arrays amortized over fanout keys per node.
_SOA_BYTES_PER_RECORD = 8 * 4 + 48


def workload_stats(name: str, scale: float = 1.0) -> dict[str, Any]:
    """Sized dimensions + peak-memory estimates without building anything.

    Powers ``python -m repro workloads --stats``; the estimates are
    order-of-magnitude build footprints (the scale sweep measures real
    tracemalloc peaks against its committed budgets).
    """
    try:
        sizing = WORKLOAD_SIZINGS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOAD_SIZINGS)}"
        ) from None
    counts = {dim: scaled(per_unit, scale, floor) for dim, (per_unit, floor) in sizing.items()}
    if name == "join":
        counts["records"] = counts["records"] + counts["outer"]
        counts["walks"] = 2 * counts["outer"]
    records = counts.get("records", counts.get("dim", 0))
    stats: dict[str, Any] = {
        "workload": name,
        "scale": scale,
        **counts,
        "est_object_bytes": records * _OBJECT_BYTES_PER_RECORD,
        "est_soa_bytes": (
            records * _SOA_BYTES_PER_RECORD if name in SOA_WORKLOADS else None
        ),
    }
    return stats


def build_workload(
    name: str, scale: float = 1.0, seed: int = 0, **kwargs: Any
) -> Workload:
    """Build a Table-2 workload by its registry name.

    Extra ``kwargs`` go to the builder (e.g. ``depth=...`` for ``join``,
    ``backend="soa"``/``max_walks=...`` for the table workloads). The
    built workload is stamped with its ``scale``/``seed`` so the run
    pipeline can rebuild an identical copy in a worker process.
    """
    try:
        builder = WORKLOAD_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOAD_BUILDERS)}"
        ) from None
    workload = builder(scale=scale, seed=seed, **kwargs)
    workload.scale = scale
    workload.seed = seed
    return workload
