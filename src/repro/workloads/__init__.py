"""Workload generators and the eight Table-2 applications.

The paper's datasets (10M-record tables, HB/bcsstk matrices, social graphs)
are substituted by synthetic generators that preserve what drives cache
behaviour: key-distribution skew, index depth and fan-out, spatial
clustering, and power-law degree/popularity. Default scales are ~100x
smaller than the paper's (see DESIGN.md) and configurable upward.
"""

from repro.workloads.keygen import clustered_stream, uniform_stream, zipf_stream
from repro.workloads.stream import KeyStream, range_spans
from repro.workloads.suite import (
    PAPER_SCALE,
    SOA_WORKLOADS,
    WORKLOAD_BUILDERS,
    WORKLOAD_SIZINGS,
    Workload,
    scaled,
    workload_stats,
    build_analytics_join,
    build_analytics_select,
    build_analytics_where,
    build_pagerank,
    build_rtree,
    build_scan,
    build_sets,
    build_spmm,
    build_workload,
)

__all__ = [
    "build_analytics_join",
    "build_analytics_select",
    "build_analytics_where",
    "build_pagerank",
    "build_rtree",
    "build_scan",
    "build_sets",
    "build_spmm",
    "build_workload",
    "clustered_stream",
    "KeyStream",
    "PAPER_SCALE",
    "range_spans",
    "scaled",
    "SOA_WORKLOADS",
    "uniform_stream",
    "WORKLOAD_BUILDERS",
    "WORKLOAD_SIZINGS",
    "Workload",
    "workload_stats",
    "zipf_stream",
]
