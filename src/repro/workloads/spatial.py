"""Synthetic spatial data: clustered quadrilaterals for the R-tree workload."""

from __future__ import annotations

import numpy as np

from repro.indexes.rtree import Rect


def clustered_rects(
    count: int,
    universe: int = 1 << 20,
    num_clusters: int = 16,
    cluster_spread: int | None = None,
    max_extent: int = 64,
    seed: int = 0,
) -> list[Rect]:
    """Quadrilaterals whose anchors cluster spatially.

    Clustering makes nearby x queries correlate with nearby y keys, which
    creates the sub-branch reuse the Branch descriptor targets (§4.3).
    """
    if count <= 0:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    spread = cluster_spread if cluster_spread is not None else max(1, universe // (num_clusters * 8))
    centers_x = rng.integers(0, universe, size=num_clusters)
    centers_y = rng.integers(0, universe, size=num_clusters)
    rects: list[Rect] = []
    used_x: set[int] = set()
    for i in range(count):
        c = rng.integers(0, num_clusters)
        x_lo = int(np.clip(centers_x[c] + rng.normal(0, spread), 0, universe - 2))
        # Distinct x anchors keep the x-tree keyspace dense but unique.
        while x_lo in used_x:
            x_lo = (x_lo + 1) % (universe - 1)
        used_x.add(x_lo)
        y_lo = int(np.clip(centers_y[c] + rng.normal(0, spread), 0, universe - 2))
        w = int(rng.integers(1, max_extent))
        h = int(rng.integers(1, max_extent))
        rects.append(
            Rect(i, x_lo, min(universe - 1, x_lo + w), y_lo, min(universe - 1, y_lo + h))
        )
    return rects
