"""KeyStream — chunked, deterministic key generation for paper-scale runs.

The eager generators in :mod:`repro.workloads.keygen` materialize one
Python ``list`` per workload, which caps the suite ~100x below the
paper's 10M-400M-key indexes: at scale the list of boxed ints (and the
intermediate numpy buffers ``rng.choice`` holds) dominate RSS before a
single walk runs. A :class:`KeyStream` produces the *identical* key
sequence in bounded numpy blocks instead, so builders consume keys
chunk-by-chunk and peak memory is O(chunk + universe), not O(count).

Byte-identity is a hard contract, not a goal: the committed baselines
(BENCH_baseline.json, the perf checksums) were produced by the eager
generators, so every stream here replicates its eager twin bit for bit.
The mechanics rely on two numpy PCG64 facts, pinned by the hypothesis
suite in ``tests/test_workload_stream.py``:

* split stability — ``rng.random(a)`` then ``rng.random(b)`` consumes
  the generator exactly like ``rng.random(a + b)`` (one 64-bit draw per
  double; same for ``integers``), so any chunking concatenates to the
  same array;
* ``Generator.choice(n, size=N, p=w)`` draws ``N`` uniforms and maps
  them through the normalized weight CDF with a right-bisect — which we
  replay per chunk against a CDF computed once.

For the shuffled Zipf stream the eager code draws the rank permutation
*after* the ``N`` choice uniforms; the stream reproduces that state by
burning a shadow generator through ``N`` doubles up front. Because the
burn length is the stream's *full* count, ``head(k)`` is a true prefix
of the full sequence — the property the scale sweep's walk cap rides on.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

import numpy as np

#: Default generation block: big enough to amortize numpy dispatch,
#: small enough that a chunk is cache- and RSS-trivial (~512 KiB int64).
DEFAULT_CHUNK = 1 << 16


def _zipf_cdf(universe: int, skew: float) -> np.ndarray:
    """Normalized CDF over ranks 1..universe with P(r) ~ 1/r^skew.

    Mirrors both the eager generator's weight construction *and* the
    renormalization ``Generator.choice`` applies internally (cumsum then
    divide by the final partial sum), so per-chunk right-bisects land on
    the same ranks the eager ``choice`` call produced.
    """
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, skew)
    weights /= weights.sum()
    cdf = weights.cumsum()
    cdf /= cdf[-1]
    return cdf


class KeyStream:
    """A deterministic, restartable sequence of integer keys.

    Every iteration restarts generation from the seed, so a stream can
    be consumed multiple times (builders iterate once for the index and
    once for the requests) and always yields the same sequence. ``count``
    may be smaller than ``full_count`` (see :meth:`head`): generation
    parameters that depend on the sequence length — the shuffled-Zipf
    permutation burn — always use ``full_count`` so a shortened stream
    is an exact prefix of the full one.
    """

    def __init__(
        self,
        count: int,
        make_chunks: Callable[[int], Iterator[np.ndarray]],
        full_count: int | None = None,
    ) -> None:
        if count < 0:
            raise ValueError("count must be >= 0")
        self.count = count
        self.full_count = full_count if full_count is not None else count
        if self.count > self.full_count:
            raise ValueError("count cannot exceed full_count")
        self._make_chunks = make_chunks

    # ------------------------------------------------------------------ #
    # Consumption
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self.count

    def chunks(self) -> Iterator[np.ndarray]:
        """Yield the sequence as numpy blocks (concatenation == eager)."""
        remaining = self.count
        for block in self._make_chunks(self.count):
            if remaining <= 0:
                return
            if len(block) > remaining:
                block = block[:remaining]
            remaining -= len(block)
            yield block

    def __iter__(self) -> Iterator[int]:
        for block in self.chunks():
            yield from block.tolist()

    def materialize(self) -> list[int]:
        """The full eager list (tests and small call sites only)."""
        out: list[int] = []
        for block in self.chunks():
            out.extend(block.tolist())
        return out

    def first(self) -> int:
        """The first key without consuming the stream."""
        for block in self.chunks():
            if len(block):
                return int(block[0])
        raise ValueError("empty stream has no first key")

    def head(self, count: int) -> "KeyStream":
        """A stream over the first ``count`` keys (exact prefix)."""
        return KeyStream(
            min(count, self.count), self._make_chunks, full_count=self.full_count
        )

    # ------------------------------------------------------------------ #
    # Generators (each mirrors its repro.workloads.keygen twin)
    # ------------------------------------------------------------------ #

    @classmethod
    def uniform(
        cls, universe: int, count: int, seed: int = 0,
        chunk_size: int = DEFAULT_CHUNK,
    ) -> "KeyStream":
        """Chunked twin of :func:`~repro.workloads.keygen.uniform_stream`."""
        if universe <= 0:
            raise ValueError("universe must be positive")

        def make(n: int) -> Iterator[np.ndarray]:
            rng = np.random.default_rng(seed)
            done = 0
            while done < n:
                m = min(chunk_size, n - done)
                yield rng.integers(0, universe, size=m)
                done += m

        return cls(count, make)

    @classmethod
    def zipf(
        cls, universe: int, count: int, skew: float = 0.8, seed: int = 0,
        shuffle_ranks: bool = True, chunk_size: int = DEFAULT_CHUNK,
    ) -> "KeyStream":
        """Chunked twin of :func:`~repro.workloads.keygen.zipf_stream`."""
        if universe <= 0:
            raise ValueError("universe must be positive")
        if skew < 0:
            raise ValueError("skew must be non-negative")
        full = count

        def make(n: int) -> Iterator[np.ndarray]:
            cdf = _zipf_cdf(universe, skew)
            rng = np.random.default_rng(seed)
            perm = None
            if shuffle_ranks:
                # The eager path draws the permutation after `full` choice
                # uniforms; reach the same generator state via a shadow
                # burn (chunked, so the burn itself stays bounded).
                burn = np.random.default_rng(seed)
                burned = 0
                while burned < full:
                    m = min(chunk_size, full - burned)
                    burn.random(m)
                    burned += m
                perm = burn.permutation(universe)
            done = 0
            while done < n:
                m = min(chunk_size, n - done)
                drawn = cdf.searchsorted(rng.random(m), side="right")
                yield perm[drawn] if perm is not None else drawn
                done += m

        return cls(count, make, full_count=full)

    @classmethod
    def clustered(
        cls, universe: int, count: int, num_clusters: int = 8,
        cluster_width: int | None = None, drift_every: int = 512,
        seed: int = 0, chunk_size: int = DEFAULT_CHUNK,
    ) -> "KeyStream":
        """Chunked twin of :func:`~repro.workloads.keygen.clustered_stream`.

        The eager generator is a stateful per-element loop (one normal
        draw per key, a drift redraw every ``drift_every``), so chunking
        just carries the loop state across block boundaries.
        """
        if universe <= 0:
            raise ValueError("universe must be positive")
        if num_clusters <= 0:
            raise ValueError("num_clusters must be positive")

        def make(n: int) -> Iterator[np.ndarray]:
            rng = np.random.default_rng(seed)
            width = (
                cluster_width if cluster_width is not None
                else max(1, universe // (num_clusters * 4))
            )
            centers = rng.integers(
                width, max(width + 1, universe - width), size=num_clusters
            )
            center = int(centers[0])
            keys: list[int] = []
            for i in range(n):
                if drift_every and i and i % drift_every == 0:
                    center = int(centers[rng.integers(0, num_clusters)])
                offset = int(rng.normal(0, width / 3))
                keys.append(int(np.clip(center + offset, 0, universe - 1)))
                if len(keys) >= chunk_size:
                    yield np.asarray(keys, dtype=np.int64)
                    keys = []
            if keys:
                yield np.asarray(keys, dtype=np.int64)

        return cls(count, make)


def chunked(seq: list, size: int) -> Iterator[list]:
    """Yield ``seq`` in contiguous slices of at most ``size`` items.

    The request-side twin of :meth:`KeyStream.chunks`: the batch
    pipeline (``repro.sim.batch``) walks request lists chunk-at-a-time
    so its numpy intermediates stay O(chunk), not O(run).
    """
    if size <= 0:
        raise ValueError("chunk size must be positive")
    for start in range(0, len(seq), size):
        yield seq[start : start + size]


def range_spans(
    starts: KeyStream, span: int, universe: int
) -> Iterator[tuple[int, int]]:
    """[R1, R2] BETWEEN windows from a stream of start keys.

    Chunked twin of :func:`~repro.workloads.keygen.range_queries` given
    the same Zipf start stream.
    """
    hi_cap = universe - 1
    for block in starts.chunks():
        for s in block.tolist():
            yield s, min(hi_cap, s + span)


__all__ = ["DEFAULT_CHUNK", "KeyStream", "chunked", "range_spans"]
