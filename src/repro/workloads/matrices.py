"""Synthetic sparse matrices with power-law structure.

Stand-ins for the paper's SuiteSparse (HB/bcsstk) inputs: what SpMM's cache
behaviour depends on is column-popularity skew (how often the inner product
revisits the same B column) and nonzeros-per-column, both explicit knobs
here.
"""

from __future__ import annotations

import numpy as np


def powerlaw_coo(
    shape: tuple[int, int],
    nnz: int,
    col_skew: float = 1.0,
    seed: int = 0,
) -> list[tuple[int, int, float]]:
    """(row, col, value) triples with Zipf-popular columns.

    Duplicate coordinates are collapsed (last write wins), so the returned
    count can be slightly below ``nnz``.
    """
    rows, cols = shape
    if rows <= 0 or cols <= 0:
        raise ValueError(f"shape must be positive, got {shape}")
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.power(np.arange(1, cols + 1, dtype=np.float64), col_skew)
    weights /= weights.sum()
    cs = rng.choice(cols, size=nnz, p=weights)
    rs = rng.integers(0, rows, size=nnz)
    vals = rng.standard_normal(nnz)
    seen: dict[tuple[int, int], float] = {}
    for r, c, v in zip(rs.tolist(), cs.tolist(), vals.tolist()):
        seen[(r, c)] = v
    return [(r, c, v) for (r, c), v in sorted(seen.items())]


def banded_coo(
    shape: tuple[int, int],
    bandwidth: int,
    density: float = 0.5,
    seed: int = 0,
) -> list[tuple[int, int, float]]:
    """Banded matrix (bcsstk-like stiffness structure)."""
    rows, cols = shape
    rng = np.random.default_rng(seed)
    triples = []
    for r in range(rows):
        lo = max(0, r - bandwidth)
        hi = min(cols - 1, r + bandwidth)
        for c in range(lo, hi + 1):
            if rng.random() < density:
                triples.append((r, c, float(rng.standard_normal())))
    return triples


def inner_product_rows(
    num_rows: int,
    nnz_per_row: int,
    num_cols: int,
    bandwidth: int = 96,
    col_skew: float = 1.0,
    seed: int = 0,
) -> list[list[tuple[int, float]]]:
    """Rows of A for the SpMM inner product, with banded column reuse.

    Each row holds ``nnz_per_row`` (col, value) pairs drawn from a sliding
    band around the row's diagonal position (stiffness-matrix structure).
    Consecutive rows revisit the same B columns within the band — the
    short-term leaf reuse the paper's Node pattern locks down with its
    access-count lifetime ("SpMM exhibits high short-term reuse").
    ``col_skew`` adds Zipf-weighted global hot columns on top.
    """
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.power(np.arange(1, num_cols + 1, dtype=np.float64), col_skew)
    weights /= weights.sum()
    rows = []
    for i in range(num_rows):
        center = int(i * num_cols / max(1, num_rows))
        lo = max(0, min(center - bandwidth // 2, num_cols - bandwidth))
        band = lo + rng.integers(0, bandwidth, size=max(1, nnz_per_row - 2))
        hot = rng.choice(num_cols, size=min(2, nnz_per_row), p=weights)
        cols = np.unique(np.concatenate([band, hot]))
        vals = rng.standard_normal(len(cols))
        rows.append([(int(c), float(v)) for c, v in zip(cols, vals)])
    return rows
