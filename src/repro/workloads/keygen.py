"""Key-stream generators: uniform, Zipfian, and clustered/drifting.

The reuse patterns METAL exploits come from skew (hot keys funneling walks
through common roots) and clustering (queries dwelling in a sub-branch
before drifting). These generators reproduce both knobs deterministically
from a seed.
"""

from __future__ import annotations

import numpy as np


def uniform_stream(universe: int, count: int, seed: int = 0) -> list[int]:
    """``count`` keys drawn uniformly from [0, universe)."""
    if universe <= 0:
        raise ValueError("universe must be positive")
    rng = np.random.default_rng(seed)
    return rng.integers(0, universe, size=count).tolist()


def zipf_stream(
    universe: int, count: int, skew: float = 0.8, seed: int = 0, shuffle_ranks: bool = True
) -> list[int]:
    """Zipfian keys: P(rank r) proportional to 1 / r^skew.

    ``shuffle_ranks`` scatters hot ranks across the key space so hotness is
    not correlated with key order (hot leaves spread over many branches).
    """
    if universe <= 0:
        raise ValueError("universe must be positive")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, skew)
    weights /= weights.sum()
    drawn = rng.choice(universe, size=count, p=weights)
    if shuffle_ranks:
        perm = rng.permutation(universe)
        drawn = perm[drawn]
    return drawn.tolist()


def clustered_stream(
    universe: int,
    count: int,
    num_clusters: int = 8,
    cluster_width: int | None = None,
    drift_every: int = 512,
    seed: int = 0,
) -> list[int]:
    """Keys dwell near a cluster center, periodically drifting to another.

    Models the R-tree behaviour of Section 4.3: "certain key clusters being
    repetitively scanned" with the cluster moving over time — what the
    Branch descriptor's moving-median pivot tracks.
    """
    if universe <= 0:
        raise ValueError("universe must be positive")
    if num_clusters <= 0:
        raise ValueError("num_clusters must be positive")
    rng = np.random.default_rng(seed)
    width = cluster_width if cluster_width is not None else max(1, universe // (num_clusters * 4))
    centers = rng.integers(width, max(width + 1, universe - width), size=num_clusters)
    keys: list[int] = []
    center = int(centers[0])
    for i in range(count):
        if drift_every and i and i % drift_every == 0:
            center = int(centers[rng.integers(0, num_clusters)])
        offset = int(rng.normal(0, width / 3))
        keys.append(int(np.clip(center + offset, 0, universe - 1)))
    return keys


def range_queries(
    universe: int,
    count: int,
    span: int,
    skew: float = 0.8,
    seed: int = 0,
) -> list[tuple[int, int]]:
    """[R1, R2] windows for SELECT ... BETWEEN queries, Zipf-placed."""
    starts = zipf_stream(universe, count, skew=skew, seed=seed)
    return [(s, min(universe - 1, s + span)) for s in starts]
