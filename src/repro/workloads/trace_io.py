"""Walk-trace import/export (JSON lines, optionally gzip).

Lets users capture a workload's request stream once and replay it against
different memory systems or geometries — or bring their own traces from a
real application. Index objects can't serialize, so requests are stored
against *index names* and re-bound at load time.

Format v2 adds two things paper-scale traces need:

* **Chunked iteration** — :func:`iter_trace` yields requests one at a
  time so a multi-million-walk replay never holds the whole list during
  parsing (the pipe run mode feeds the simulator straight from it).
* **Truncation detection** — v2 writers append a trailer record carrying
  the request count; a reader that reaches EOF without seeing it (a
  killed capture, a partial download) raises :class:`TraceTruncated`
  instead of silently replaying a short trace. v1 files (no trailer)
  still load.

Compression is by extension: a ``.gz`` path reads/writes through gzip
transparently (a 10M-walk JSONL trace shrinks ~20x).
"""

from __future__ import annotations

import gzip
import json
from collections.abc import Iterator
from pathlib import Path
from typing import Any, IO

from repro.sim.metrics import WalkRequest

FORMAT_VERSION = 2
#: Oldest version load/iter still accept (v1 has no trailer).
MIN_FORMAT_VERSION = 1


class TraceTruncated(ValueError):
    """A v2 trace ended without its trailer — the file is incomplete."""


def _open(path: Path, mode: str) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return path.open(mode)


def save_trace(
    path: str | Path,
    requests: list[WalkRequest],
    index_names: dict[int, str],
) -> int:
    """Write requests as JSONL (gzipped for ``.gz`` paths); returns count.

    ``index_names`` maps ``id(index_object)`` to a stable name. Every
    request's index must be named. The final line is a trailer record
    with the request count, which readers use to detect truncation.
    """
    path = Path(path)
    count = 0
    with _open(path, "w") as f:
        header = {"version": FORMAT_VERSION, "kind": "repro-walk-trace"}
        f.write(json.dumps(header) + "\n")
        for request in requests:
            name = index_names.get(id(request.index))
            if name is None:
                raise KeyError(
                    f"no name registered for index {request.index!r}; "
                    "add it to index_names"
                )
            record = {
                "index": name,
                "key": request.key,
                "compute": request.compute_cycles,
                "data_address": request.data_address,
                "data_bytes": request.data_bytes,
                "scan_hi": request.scan_hi,
            }
            f.write(json.dumps(record) + "\n")
            count += 1
        f.write(json.dumps({"trailer": True, "count": count}) + "\n")
    return count


def iter_trace(
    path: str | Path,
    indexes: dict[str, Any],
) -> Iterator[WalkRequest]:
    """Stream a JSONL trace, re-binding index names to live objects.

    Yields one :class:`WalkRequest` per record without materializing the
    list. For v2 traces, raises :class:`TraceTruncated` if the file ends
    before the trailer or the trailer count disagrees with the records
    actually read; v1 traces (no trailer) end at EOF.
    """
    path = Path(path)
    with _open(path, "r") as f:
        header = json.loads(f.readline())
        if header.get("kind") != "repro-walk-trace":
            raise ValueError(f"{path} is not a repro walk trace")
        version = header.get("version")
        if (
            not isinstance(version, int)
            or not MIN_FORMAT_VERSION <= version <= FORMAT_VERSION
        ):
            raise ValueError(f"unsupported trace version {version!r}")
        expects_trailer = version >= 2
        count = 0
        saw_trailer = False
        for line_no, line in enumerate(f, start=2):
            if not line.strip():
                continue
            record = json.loads(line)
            if record.get("trailer"):
                declared = record.get("count")
                if declared != count:
                    raise TraceTruncated(
                        f"{path}: trailer declares {declared} requests but "
                        f"{count} were read — file is corrupt"
                    )
                saw_trailer = True
                break
            name = record["index"]
            index = indexes.get(name)
            if index is None:
                raise KeyError(
                    f"{path}:{line_no}: trace references unknown index "
                    f"{name!r}; provide it in `indexes`"
                )
            count += 1
            yield WalkRequest(
                index=index,
                key=record["key"],
                compute_cycles=record.get("compute", 0),
                data_address=record.get("data_address"),
                data_bytes=record.get("data_bytes", 64),
                scan_hi=record.get("scan_hi"),
            )
        if expects_trailer and not saw_trailer:
            raise TraceTruncated(
                f"{path}: reached end of file after {count} requests "
                "without the trailer record — the trace was truncated"
            )


def load_trace(
    path: str | Path,
    indexes: dict[str, Any],
) -> list[WalkRequest]:
    """Read a whole JSONL trace into a list (see :func:`iter_trace`)."""
    return list(iter_trace(path, indexes))


def workload_index_names(workload: Any) -> dict[int, str]:
    """Default naming for a suite workload's indexes (index0, index1...).

    Requests may reference sub-indexes of composite structures (the
    R-tree's x/y trees), so walk the request stream too.
    """
    names: dict[int, str] = {}
    for i, index in enumerate(workload.indexes):
        names[id(index)] = f"index{i}"
    for request in workload.requests:
        if id(request.index) not in names:
            names[id(request.index)] = f"index{len(names)}"
    return names
