"""Walk-trace import/export (JSON lines).

Lets users capture a workload's request stream once and replay it against
different memory systems or geometries — or bring their own traces from a
real application. Index objects can't serialize, so requests are stored
against *index names* and re-bound at load time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.sim.metrics import WalkRequest

FORMAT_VERSION = 1


def save_trace(
    path: str | Path,
    requests: list[WalkRequest],
    index_names: dict[int, str],
) -> int:
    """Write requests as JSONL; returns the number of records written.

    ``index_names`` maps ``id(index_object)`` to a stable name. Every
    request's index must be named.
    """
    path = Path(path)
    count = 0
    with path.open("w") as f:
        header = {"version": FORMAT_VERSION, "kind": "repro-walk-trace"}
        f.write(json.dumps(header) + "\n")
        for request in requests:
            name = index_names.get(id(request.index))
            if name is None:
                raise KeyError(
                    f"no name registered for index {request.index!r}; "
                    "add it to index_names"
                )
            record = {
                "index": name,
                "key": request.key,
                "compute": request.compute_cycles,
                "data_address": request.data_address,
                "data_bytes": request.data_bytes,
                "scan_hi": request.scan_hi,
            }
            f.write(json.dumps(record) + "\n")
            count += 1
    return count


def load_trace(
    path: str | Path,
    indexes: dict[str, Any],
) -> list[WalkRequest]:
    """Read a JSONL trace, re-binding index names to live objects."""
    path = Path(path)
    requests: list[WalkRequest] = []
    with path.open() as f:
        header = json.loads(f.readline())
        if header.get("kind") != "repro-walk-trace":
            raise ValueError(f"{path} is not a repro walk trace")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace version {header.get('version')!r}"
            )
        for line_no, line in enumerate(f, start=2):
            if not line.strip():
                continue
            record = json.loads(line)
            name = record["index"]
            index = indexes.get(name)
            if index is None:
                raise KeyError(
                    f"{path}:{line_no}: trace references unknown index "
                    f"{name!r}; provide it in `indexes`"
                )
            requests.append(
                WalkRequest(
                    index=index,
                    key=record["key"],
                    compute_cycles=record.get("compute", 0),
                    data_address=record.get("data_address"),
                    data_bytes=record.get("data_bytes", 64),
                    scan_hi=record.get("scan_hi"),
                )
            )
    return requests


def workload_index_names(workload: Any) -> dict[int, str]:
    """Default naming for a suite workload's indexes (index0, index1...).

    Requests may reference sub-indexes of composite structures (the
    R-tree's x/y trees), so walk the request stream too.
    """
    names: dict[int, str] = {}
    for i, index in enumerate(workload.indexes):
        names[id(index)] = f"index{i}"
    for request in workload.requests:
        if id(request.index) not in names:
            names[id(request.index)] = f"index{len(names)}"
    return names
