"""Synthetic power-law graphs for the PageRank-push workload."""

from __future__ import annotations

import numpy as np


def powerlaw_edges(
    num_vertices: int,
    num_edges: int,
    skew: float = 1.0,
    seed: int = 0,
) -> list[tuple[int, int]]:
    """Directed edges with Zipfian in-degree (hub destinations).

    Hubs give the index reuse PageRank-push exhibits: most pushes land on a
    small set of popular destination vertices.
    """
    if num_vertices <= 1:
        raise ValueError("need at least 2 vertices")
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.power(np.arange(1, num_vertices + 1, dtype=np.float64), skew)
    weights /= weights.sum()
    dsts = rng.choice(num_vertices, size=num_edges, p=weights)
    srcs = rng.integers(0, num_vertices, size=num_edges)
    edges = []
    for s, d in zip(srcs.tolist(), dsts.tolist()):
        if s != d:
            edges.append((s, d))
    return edges
