"""IX-cache — a cache that uses key ranges as tags (Section 3.1).

Organization (Fig. 6 / Fig. 8):

* Every entry is one 64B block tagged with a :class:`RangeTag` ([Lo, Hi] +
  level). A probe by key matches entries with ``Lo <= key <= Hi``; ties
  between covering entries are broken by the level field, preferring the
  node *closest to the leaf* (maximal short-circuit).
* Set-associativity divides the key space into 2^b-wide key blocks; an
  index node maps to the set(s) of the key blocks it spans. Nodes spanning
  a few blocks are split into per-set sub-range entries (Case-2 packing in
  key space); nodes wider than the replication limit (near-root nodes) go
  to a small fully-associative wide-entry array.
* Replacement uses 4-bit saturating utility counters ("we track utility by
  using 4-bit saturating counters (one per entry)", Section 5) plus an
  optional lifetime pin set by the Node descriptor: pinned entries are not
  evictable until their remaining accesses are used up.
"""

from __future__ import annotations

import itertools
from collections import Counter
from operator import attrgetter
from typing import Any

from repro.core.packing import blocks_needed, coalesced_tag, pack_node
from repro.core.policy import (
    UTILITY_INSERT,
    UTILITY_MAX,
    ReplacementPolicy,
    UtilityRRIPPolicy,
    make_policy,
)
from repro.core.range_tag import RangeTag
from repro.indexes.base import IndexNode
from repro.mem.stats import CacheStats
from repro.obs.tracer import NULL_TRACER
from repro.params import BLOCK_SIZE, NS_STRIDE, CacheParams, IXCACHE_ENERGY_FJ

#: Back-compat aliases: the counter geometry now lives in repro.core.policy
#: (the hot loops in repro.sim.memsys import the max through here).
_UTILITY_MAX = UTILITY_MAX
_entry_seq = itertools.count()
_entry_level = attrgetter("tag.level")


def _identity(k: int) -> int:
    return k


def block_bits_for(key_universe: int, params: CacheParams | None = None,
                   wide_fraction: float = 0.125) -> int:
    """Key-block bits that spread a key universe across the cache's sets.

    Fig. 8 fixes b = 4 for illustration; a deployment sizes the key block
    so one block of keys maps to roughly one set (too-small blocks make
    mid-level nodes span many sets and replicate; too-large blocks cause
    the set conflicts the paper warns about).
    """
    params = params or CacheParams()
    entries = max(1, params.entries)
    sa_entries = max(1, entries - max(1, int(entries * wide_fraction)))
    sets = max(1, sa_entries // params.ways)
    per_set = max(1, key_universe // sets)
    return max(4, per_set.bit_length() - 1)


#: Utility a fresh entry starts with (see repro.core.policy).
_UTILITY_INSERT = UTILITY_INSERT


class IXEntry:
    """One cache block: a match tag and the node(s) packed behind it.

    ``utility`` is the paper's 4-bit saturating counter; ``stamp`` is a
    policy-defined scratch word (LRU tick, hit count — see
    :mod:`repro.core.policy`) that the default policy never touches.
    """

    __slots__ = ("tag", "parts", "utility", "life", "nbytes", "seq", "stamp")

    def __init__(self, tag: RangeTag, parts: list[tuple[RangeTag, IndexNode]], life: int = 0):
        self.tag = tag
        self.parts = parts
        self.utility = _UTILITY_INSERT
        self.life = life
        self.nbytes = sum(min(n.byte_size(), BLOCK_SIZE) for _, n in parts)
        self.seq = next(_entry_seq)
        self.stamp = 0

    def select(self, key: int) -> IndexNode | None:
        """Pick the constituent node whose exact range covers the key."""
        for part_tag, node in self.parts:
            if part_tag.matches(key):
                return node
        return None

    @property
    def pinned(self) -> bool:
        return self.life > 0


class IXCache:
    """Range-tagged cache with key-block set-associativity.

    ``key_block_bits`` is ``b`` of Fig. 8 (keys 0..2^b-1 form block 0).
    ``replication_limit`` caps how many sets a node is replicated across
    before falling back to the wide-entry array; ``wide_fraction`` is the
    share of capacity reserved for that array.
    """

    def __init__(
        self,
        params: CacheParams | None = None,
        key_block_bits: int = 4,
        replication_limit: int = 4,
        wide_fraction: float = 0.125,
        associative: bool = True,
        coalesce: bool = True,
        partition: dict[int, int] | None = None,
        policy: "str | ReplacementPolicy" = "utility_rrip",
    ) -> None:
        self.params = params or CacheParams(e_access=IXCACHE_ENERGY_FJ)
        self.stats = CacheStats()
        self.tracer = NULL_TRACER
        #: Replacement policy (repro.core.policy): victim selection and
        #: per-entry metadata maintenance. The default reproduces the
        #: paper's utility scheme byte-for-byte; the hot paths keep their
        #: inlined counter updates for it and dispatch for everything else.
        self.policy = make_policy(policy)
        self._default_policy = type(self.policy) is UtilityRRIPPolicy
        self.key_block_bits = key_block_bits
        self.replication_limit = replication_limit
        self.associative = associative
        #: Case-3 packing (Fig. 5): merge adjacent small same-level nodes
        #: into one super-range entry. Toggleable for the ablation bench.
        self.coalesce = coalesce
        #: Optional way partitioning per index: maps index_id -> maximum
        #: ways an index may occupy in any set. Mitigates the cross-index
        #: contention the paper notes for JOIN ("METAL experiences high
        #: contention as it targets multiple B+Trees").
        self.partition = dict(partition) if partition else None
        if self.partition is not None:
            for index_id, quota in self.partition.items():
                if quota <= 0:
                    raise ValueError(
                        f"way quota for index {index_id} must be positive"
                    )
        total_entries = max(1, self.params.entries)
        if associative:
            self.wide_capacity = max(1, int(total_entries * wide_fraction))
            sa_entries = max(1, total_entries - self.wide_capacity)
            self.num_sets = max(1, sa_entries // self.params.ways)
            self.ways = self.params.ways
        else:
            # Fully-associative mode: one set holding everything.
            self.wide_capacity = 0
            self.num_sets = 1
            self.ways = total_entries
        self._sets: list[list[IXEntry]] = [[] for _ in range(self.num_sets)]
        self._wide: list[IXEntry] = []
        #: Histogram of the levels at which probes hit (Fig. 21 inputs).
        self.hit_levels: Counter[int] = Counter()

    def attach_obs(self, tracer, registry=None, prefix: str = "ix") -> None:
        """Wire tracing and bind IX-cache statistics into a registry.

        Event kinds pair 1:1 with :class:`CacheStats` increments so the
        tracer's per-kind counts reconcile exactly with the aggregates:
        ``ix_probe`` per access, ``ix_insert`` per insertion, ``ix_evict``
        per eviction, ``ix_bypass`` per bypass.
        """
        self.tracer = tracer
        if registry is not None:
            registry.bind_stats(prefix, self.stats, (
                "accesses", "hits", "misses",
                "insertions", "evictions", "bypasses",
            ))
            registry.bind(f"{prefix}.resident_entries", lambda: len(self))
            registry.bind(f"{prefix}.occupancy_fraction",
                          lambda: self.occupancy_fraction)

    # ------------------------------------------------------------------ #
    # Geometry helpers
    # ------------------------------------------------------------------ #

    def set_of(self, key: int) -> int:
        return (key >> self.key_block_bits) % self.num_sets

    def _key_block(self, key: int) -> int:
        return key >> self.key_block_bits

    # ------------------------------------------------------------------ #
    # Hit path
    # ------------------------------------------------------------------ #

    def probe(self, key: int) -> IndexNode | None:
        """Match stage + tie-break + child select (Fig. 6).

        Returns the deepest cached node covering ``key`` (walk restarts
        from it), or None on a miss.
        """
        # The match stage touches every way in the set plus the wide array
        # on each probe, so the tag comparison and part scan are inlined
        # (no RangeTag.matches / IXEntry.select dispatch on this path).
        candidates: list[IXEntry] = []
        for entry in self._sets[(key >> self.key_block_bits) % self.num_sets]:
            tag = entry.tag
            if tag.lo <= key <= tag.hi:
                candidates.append(entry)
        for entry in self._wide:
            tag = entry.tag
            if tag.lo <= key <= tag.hi:
                candidates.append(entry)
        best_node: IndexNode | None = None
        best_entry: IXEntry | None = None
        if len(candidates) > 1:
            # Tie-break sort only when several entries cover the key.
            # reverse=True is stable (equal levels keep scan order), so
            # this matches sorting ascending on -level.
            candidates.sort(key=_entry_level, reverse=True)
        for entry in candidates:
            for part_tag, node in entry.parts:
                if part_tag.lo <= key <= part_tag.hi:
                    best_entry, best_node = entry, node
                    break
            if best_node is not None:
                break
        hit = best_node is not None
        self.stats.record(hit)
        if hit and best_entry is not None:
            if self._default_policy:
                if best_entry.utility < _UTILITY_MAX:
                    best_entry.utility += 1
            else:
                self.policy.on_hit(best_entry)
            if best_entry.life > 0:
                best_entry.life -= 1
            self.hit_levels[best_entry.tag.level] += 1
        if self.tracer.enabled:
            self.tracer.emit("ix_probe", key=key, hit=hit)
            if hit and best_entry is not None:
                self.tracer.emit("ix_hit", key=key, level=best_entry.tag.level)
        return best_node

    def peek(self, key: int) -> IndexNode | None:
        """Probe without touching statistics or utility (for tests)."""
        best: tuple[int, IndexNode] | None = None
        for entry in self._sets[self.set_of(key)] + self._wide:
            if entry.tag.matches(key):
                node = entry.select(key)
                if node is not None and (best is None or entry.tag.level > best[0]):
                    best = (entry.tag.level, node)
        return best[1] if best else None

    # ------------------------------------------------------------------ #
    # Insert / bypass
    # ------------------------------------------------------------------ #

    def insert(
        self, node: IndexNode, ns: Any = None, life: int = 0,
        key: int | None = None,
        packed: list[tuple[RangeTag, IndexNode]] | None = None,
    ) -> bool:
        """Insert an index node; returns False if wholly rejected.

        ``ns`` maps raw keys to namespaced keys (identity when None).
        The node is packed per Fig. 5, then each entry is placed in the
        set(s) its range spans (or the wide array). When ``key`` (already
        namespaced) is given and the node splits into several sub-range
        entries, only the entry the walk actually searched — the one
        covering ``key`` — is cached; the walker never read the others.
        ``packed`` lets a caller supply a precomputed ``pack_node`` result
        (read-only trees only — packing is pure in the node's geometry);
        the list is never mutated here.
        """
        if ns is None:
            ns = _identity
        if packed is None:
            packed = pack_node(node, ns, self.params.block_bytes)
        if key is not None and len(packed) > 1:
            covering = [(tag, n) for tag, n in packed if tag.matches(key)]
            if covering:
                packed = covering
        if not packed:
            return False
        placed_any = False
        for tag, part_node in packed:
            if self._place(tag, part_node, life):
                placed_any = True
        if not placed_any:
            self.stats.bypasses += 1
            if self.tracer.enabled:
                self.tracer.emit("ix_bypass", level=node.level, reason="rejected")
        return placed_any

    def note_bypass(self) -> None:
        """Record a pattern-directed bypass (node deliberately not cached)."""
        self.stats.bypasses += 1
        if self.tracer.enabled:
            self.tracer.emit("ix_bypass", reason="pattern")

    def _place(self, tag: RangeTag, node: IndexNode, life: int) -> bool:
        if not self.associative:
            return self._place_in_set(0, tag, node, life)
        bits = self.key_block_bits
        first = tag.lo >> bits
        last = tag.hi >> bits
        if last - first + 1 > self.replication_limit:
            return self._place_wide(tag, node, life)
        if first == last:
            # Single key block: the clip is the identity (the tag lies
            # wholly inside the block), so place it unclipped.
            return self._place_in_set(first % self.num_sets, tag, node, life)
        placed = False
        for block in range(first, last + 1):
            block_lo = block << bits
            block_hi = block_lo + (1 << bits) - 1
            clipped = tag.clip(block_lo, block_hi)
            if self._place_in_set(block % self.num_sets, clipped, node, life):
                placed = True
        return placed

    def _place_in_set(self, set_idx: int, tag: RangeTag, node: IndexNode, life: int) -> bool:
        ways = self._sets[set_idx]
        for entry in ways:
            if entry.tag == tag:
                for _, part_node in entry.parts:
                    if part_node is node:
                        if self._default_policy:
                            entry.utility = min(_UTILITY_MAX, entry.utility + 1)
                        else:
                            self.policy.on_hit(entry)
                        entry.life = max(entry.life, life)
                        return True
        block_bytes = self.params.block_bytes
        node_bytes = min(node.byte_size(), block_bytes)
        if self.coalesce and life == 0:
            # Case-3 coalescing: merge with an adjacent same-level small
            # entry. (A pinned insertion never coalesces — the original
            # scan skipped every candidate when life > 0.) The
            # ``can_coalesce`` legality check is inlined: this scan runs
            # per way on every insert.
            tag_level = tag.level
            tag_lo = tag.lo
            tag_hi = tag.hi
            tag_ns = tag_lo // NS_STRIDE
            tag_width = tag_hi - tag_lo + 1
            for entry in ways:
                if entry.life > 0:
                    continue
                etag = entry.tag
                if (etag.level != tag_level
                        or entry.nbytes + node_bytes > block_bytes):
                    continue
                elo = etag.lo
                ehi = etag.hi
                if elo // NS_STRIDE != tag_ns:
                    continue
                if elo <= tag_hi and tag_lo <= ehi:
                    continue  # overlapping ranges never coalesce
                gap = ((elo if elo > tag_lo else tag_lo)
                       - (ehi if ehi < tag_hi else tag_hi) - 1)
                if gap <= (ehi - elo + 1) + tag_width:
                    entry.parts.append((tag, node))
                    entry.tag = coalesced_tag(etag, tag)
                    entry.nbytes += node_bytes
                    self.stats.insertions += 1
                    if self.tracer.enabled:
                        self.tracer.emit("ix_insert", level=tag.level,
                                         lo=tag.lo, hi=tag.hi, coalesced=True)
                    return True
        owner = tag.lo // NS_STRIDE
        if self.partition is not None and owner in self.partition:
            owned = [e for e in ways if e.tag.lo // NS_STRIDE == owner]
            if len(owned) >= self.partition[owner]:
                # Quota full: the index may only displace its own entries.
                victims = [e for e in owned if not e.pinned] or owned
                victim = self.policy.select_victim(victims)
                ways.remove(victim)
                self.stats.evictions += 1
                if self.tracer.enabled:
                    self.tracer.emit("ix_evict", level=victim.tag.level,
                                     reason="quota")
        if len(ways) >= self.ways and not self._evict_from(ways):
            self.stats.bypasses += 1
            if self.tracer.enabled:
                self.tracer.emit("ix_bypass", level=tag.level, reason="pinned_set")
            return False
        entry = IXEntry(tag, [(tag, node)], life)
        if not self._default_policy:
            # The default's insertion metadata (utility 3) is already set
            # by the IXEntry constructor; other policies stamp here.
            self.policy.on_insert(entry)
        ways.append(entry)
        self.stats.insertions += 1
        if self.tracer.enabled:
            self.tracer.emit("ix_insert", level=tag.level,
                             lo=tag.lo, hi=tag.hi, set=set_idx)
        return True

    def _place_wide(self, tag: RangeTag, node: IndexNode, life: int) -> bool:
        for entry in self._wide:
            if entry.tag == tag and any(n is node for _, n in entry.parts):
                if self._default_policy:
                    entry.utility = min(_UTILITY_MAX, entry.utility + 1)
                else:
                    self.policy.on_hit(entry)
                return True
        if len(self._wide) >= self.wide_capacity and not self._evict_from(self._wide):
            self.stats.bypasses += 1
            if self.tracer.enabled:
                self.tracer.emit("ix_bypass", level=tag.level, reason="pinned_wide")
            return False
        entry = IXEntry(tag, [(tag, node)], life)
        if not self._default_policy:
            self.policy.on_insert(entry)
        self._wide.append(entry)
        self.stats.insertions += 1
        if self.tracer.enabled:
            self.tracer.emit("ix_insert", level=tag.level,
                             lo=tag.lo, hi=tag.hi, wide=True)
        return True

    def _evict_from(self, entries: list[IXEntry]) -> bool:
        """Evict one entry chosen by the replacement policy.

        Unpinned entries are the candidate pool; the policy picks the
        victim and then ages the survivors (``epoch_decay`` — RRIP-style
        renormalization for the default policy): entries that keep
        getting hit stay near the top of the counter range while
        streaming one-touch insertions churn at the bottom.
        """
        victims = [e for e in entries if e.life <= 0]
        if not victims:
            # Lifetime pins are advisory: rather than deadlocking a fully
            # pinned set, reclaim the pinned entry with the least remaining
            # life (its expected accesses are most nearly consumed).
            victim = min(entries, key=lambda e: (e.life, e.utility, e.seq))
            entries.remove(victim)
            self.stats.evictions += 1
            if self.tracer.enabled:
                self.tracer.emit("ix_evict", level=victim.tag.level,
                                 reason="pinned_reclaim")
            # Survivors age on this path exactly as on the unpinned path:
            # a fully-pinned, saturated set (common in the wide array,
            # whose near-root entries carry long lifetimes) must not stay
            # permanently fresher than set entries under the same
            # eviction pressure.
            self.policy.epoch_decay(entries, victim)
            return True
        victim = self.policy.select_victim(victims)
        entries.remove(victim)
        self.stats.evictions += 1
        if self.tracer.enabled:
            self.tracer.emit("ix_evict", level=victim.tag.level,
                             utility=victim.utility, reason="utility")
        for entry in entries:
            if entry.life > 0:
                # Lifetime is a lease, not a grant in perpetuity: pins
                # decay under eviction pressure so entries whose expected
                # accesses never arrive become reclaimable.
                entry.life -= 1
        self.policy.epoch_decay(entries, victim)
        return True

    # ------------------------------------------------------------------ #
    # Introspection (Fig. 21 occupancy, tests)
    # ------------------------------------------------------------------ #

    def invalidate_range(self, lo: int, hi: int) -> int:
        """Drop every entry overlapping [lo, hi] (namespaced keys).

        Called when an index mutates structurally (node splits/merges):
        cached nodes whose ranges intersect the dirty interval may be
        stale. Returns the number of entries removed.
        """
        if lo > hi:
            raise ValueError(f"invalid range [{lo}, {hi}]")
        dirty = RangeTag(lo, hi, 0)
        removed = 0
        for ways in self._sets:
            keep = [e for e in ways if not e.tag.overlaps(dirty)]
            removed += len(ways) - len(keep)
            ways[:] = keep
        keep = [e for e in self._wide if not e.tag.overlaps(dirty)]
        removed += len(self._wide) - len(keep)
        self._wide[:] = keep
        self.stats.evictions += removed
        if self.tracer.enabled:
            for _ in range(removed):
                self.tracer.emit("ix_evict", reason="invalidate")
        return removed

    def entries(self) -> list[IXEntry]:
        return [e for ways in self._sets for e in ways] + list(self._wide)

    @property
    def capacity_entries(self) -> int:
        """Total entry slots across the set-associative and wide arrays."""
        return self.num_sets * self.ways + self.wide_capacity

    @property
    def occupancy_fraction(self) -> float:
        """Live entries over capacity (the Fig. 21/22 occupancy series)."""
        return len(self) / max(1, self.capacity_entries)

    def occupancy_by_level(self) -> dict[int, int]:
        """Number of cached entries per index level."""
        counts: Counter[int] = Counter()
        for entry in self.entries():
            counts[entry.tag.level] += 1
        return dict(counts)

    def __len__(self) -> int:
        return len(self.entries())

    def clear(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
        self._wide = []
        # Cross-entry policy state (LRU ticks, step counters) resets with
        # the contents: a cleared cache must behave like a fresh one.
        self.policy.clear()

    @staticmethod
    def entries_for(node: IndexNode) -> int:
        return blocks_needed(node)
