"""METAL's core contribution: the IX-cache and reuse patterns.

* :class:`IXCache` — range-tagged, set-associative-on-key-blocks cache that
  short-circuits index walks (Section 3.1).
* Reuse descriptors (:class:`NodeDescriptor`, :class:`LevelDescriptor`,
  :class:`BranchDescriptor`) and the :class:`PatternController` that applies
  them on the walk pipeline (Section 4).
* :class:`Metal` / :class:`MetalIX` — the two evaluated configurations
  (with patterns / hardwired utility policy only).
"""

from repro.core.controller import InsertDecision, PatternController
from repro.core.descriptors import (
    BranchDescriptor,
    CompositeDescriptor,
    LevelDescriptor,
    NodeDescriptor,
    ReuseDescriptor,
)
from repro.core.energy_model import CacheEnergyModel, TAG_MATCH_TABLE
from repro.core.ix_cache import IXCache, IXEntry
from repro.core.metal import Metal, MetalIX
from repro.core.packing import pack_node
from repro.core.range_tag import RangeTag

__all__ = [
    "BranchDescriptor",
    "CacheEnergyModel",
    "CompositeDescriptor",
    "InsertDecision",
    "IXCache",
    "IXEntry",
    "LevelDescriptor",
    "Metal",
    "MetalIX",
    "NodeDescriptor",
    "PatternController",
    "RangeTag",
    "ReuseDescriptor",
    "TAG_MATCH_TABLE",
    "pack_node",
]
