"""Range tags — the inversion at the heart of the IX-cache.

An address cache tags a block with its address; the IX-cache tags it with
the ``[Lo, Hi]`` key range the cached index node covers, plus a level field
used to break ties when several cached nodes cover the same key (Fig. 6:
"a 'level field' helps break the tie").
"""

from __future__ import annotations

from typing import NamedTuple


class RangeTag(NamedTuple):
    """[lo, hi] inclusive key range with the node's index level.

    Keys are namespaced integers (the memory system folds the index id into
    the key) so tags from different indexes sharing one IX-cache never
    falsely match.
    """

    lo: int
    hi: int
    level: int

    def matches(self, key: int) -> bool:
        """The matching stage: Lo <= key <= Hi."""
        return self.lo <= key <= self.hi

    def width(self) -> int:
        return self.hi - self.lo + 1

    def overlaps(self, other: "RangeTag") -> bool:
        return self.lo <= other.hi and other.lo <= self.hi

    def clip(self, lo: int, hi: int) -> "RangeTag":
        """Sub-range tag clipped to [lo, hi] (Case-2 packing)."""
        new_lo, new_hi = max(self.lo, lo), min(self.hi, hi)
        if new_lo > new_hi:
            raise ValueError(f"clip [{lo}, {hi}] does not intersect {self}")
        return RangeTag(new_lo, new_hi, self.level)
