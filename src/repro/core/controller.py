"""Pattern controller — directs IX-cache insert/bypass during walks (§3.2).

"As the walker traverses the index, the pattern controller directs the
insertion policy for the IX-cache ... For any node during a walk, the
descriptor determines whether a specific node should be inserted into the
IX-cache or bypassed entirely."

The controller is a state machine holding the active descriptor per index,
batching walks (the paper updates parameters "after a batch of 1 million
walks"; the batch size scales with our reduced workloads), computing
:class:`BatchFeedback` from cache statistics, and recording descriptor
parameters per batch so Fig. 22's adaptivity plot can be regenerated.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from repro.core.descriptors import (
    BatchFeedback,
    INSERT_ALL,
    InsertDecision,
    ReuseDescriptor,
    WalkContext,
)
from repro.core.ix_cache import IXCache
from repro.core.policy import ThresholdTuner
from repro.indexes.base import IndexNode
from repro.obs.tracer import NULL_TRACER


class PatternController:
    """Applies reuse descriptors to the walk pipeline.

    ``descriptors`` maps ``index_id`` to a descriptor; a single descriptor
    applies to every index. Indexes with no descriptor fall back to greedy
    insert-all (METAL-IX behaviour).
    """

    def __init__(
        self,
        descriptors: ReuseDescriptor | dict[int, ReuseDescriptor],
        cache: IXCache,
        batch_walks: int = 1_000,
        tune: bool = True,
        tuner: ThresholdTuner | None = None,
    ) -> None:
        if batch_walks <= 0:
            raise ValueError("batch_walks must be positive")
        self._default: ReuseDescriptor | None
        if isinstance(descriptors, ReuseDescriptor):
            self._default = descriptors
            self._by_index: dict[int, ReuseDescriptor] = {}
        else:
            self._default = None
            self._by_index = dict(descriptors)
        self.cache = cache
        self.batch_walks = batch_walks
        self.tune = tune
        self.tuner = tuner
        self.tracer = NULL_TRACER
        self._walks_in_batch = 0
        self._insertions_by_level: Counter[int] = Counter()
        self._batch_start_stats = (0, 0)  # (accesses, hits)
        self._batch_start_hit_levels: Counter[int] = Counter()
        self._batch_start_churn = (0, 0)  # (evictions, insertions)
        #: One entry per completed batch: descriptor params + batch stats.
        self.history: list[dict[str, Any]] = []

    def descriptor_for(self, index_id: int) -> ReuseDescriptor | None:
        return self._by_index.get(index_id, self._default)

    # ------------------------------------------------------------------ #
    # Walk pipeline hooks
    # ------------------------------------------------------------------ #

    def begin_walk(self, index_id: int, key: int) -> None:
        descriptor = self._by_index.get(index_id, self._default)
        if descriptor is not None:
            descriptor.observe_key(key)

    def decide(
        self,
        index_id: int,
        node: IndexNode,
        height: int,
        ctx: WalkContext | None = None,
    ) -> InsertDecision:
        # descriptor_for() inlined: decide() runs once per visited node.
        descriptor = self._by_index.get(index_id, self._default)
        if descriptor is None:
            return INSERT_ALL
        decision = descriptor.decide(node, height, ctx)
        if decision.insert:
            self._insertions_by_level[node.level] += 1
        if self.tracer.enabled:
            self.tracer.emit("desc_decision", level=node.level,
                             insert=decision.insert, life=decision.life)
        return decision

    def end_walk(self) -> None:
        self._walks_in_batch += 1
        if self._walks_in_batch >= self.batch_walks:
            self._finish_batch()

    # ------------------------------------------------------------------ #
    # Batch tuning
    # ------------------------------------------------------------------ #

    def _finish_batch(self) -> None:
        stats = self.cache.stats
        accesses0, hits0 = self._batch_start_stats
        batch_accesses = stats.accesses - accesses0
        batch_hits = stats.hits - hits0
        hits_by_level = {
            level: count - self._batch_start_hit_levels.get(level, 0)
            for level, count in self.cache.hit_levels.items()
        }
        feedback = BatchFeedback(
            hits_by_level=hits_by_level,
            insertions_by_level=dict(self._insertions_by_level),
            hit_rate=(batch_hits / batch_accesses) if batch_accesses else 0.0,
            occupancy=len(self.cache) / max(1, self.cache.params.entries),
        )
        described: list[dict[str, Any]] = []
        for descriptor in self._all_descriptors():
            if self.tune:
                descriptor.tune(feedback)
            described.append(descriptor.describe())
        entry: dict[str, Any] = {
            "walks": self._walks_in_batch,
            "hit_rate": feedback.hit_rate,
            "occupancy": feedback.occupancy,
            "descriptors": described,
        }
        if self.tuner is not None:
            # Churn = fraction of this batch's insertions that forced an
            # eviction. High churn means admission is too permissive for
            # the working set; low churn means we can afford to admit more.
            evictions0, insertions0 = self._batch_start_churn
            batch_evictions = stats.evictions - evictions0
            batch_insertions = stats.insertions - insertions0
            churn = (
                (batch_evictions / batch_insertions) if batch_insertions else 0.0
            )
            thresholds: list[int] = []
            for descriptor in self._all_descriptors():
                current = descriptor.admission_threshold()
                proposed = self.tuner.propose(churn, current)
                if proposed != current:
                    descriptor.set_admission_threshold(proposed)
                thresholds.append(descriptor.admission_threshold())
            entry["tuner"] = {"churn": churn, "thresholds": thresholds}
        self.history.append(entry)
        self._walks_in_batch = 0
        self._insertions_by_level.clear()
        self._batch_start_stats = (stats.accesses, stats.hits)
        self._batch_start_hit_levels = Counter(self.cache.hit_levels)
        self._batch_start_churn = (stats.evictions, stats.insertions)
        if self.tracer.enabled:
            self.tracer.emit("batch_tuned", batch=len(self.history),
                             hit_rate=feedback.hit_rate,
                             occupancy=feedback.occupancy)

    def _all_descriptors(self) -> list[ReuseDescriptor]:
        seen: list[ReuseDescriptor] = []
        if self._default is not None:
            seen.append(self._default)
        for descriptor in self._by_index.values():
            if all(descriptor is not s for s in seen):
                seen.append(descriptor)
        return seen
