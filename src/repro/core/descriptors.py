"""Reuse patterns and their cache descriptors (Section 4).

A *reuse pattern* is the minimal set of index nodes an ideal walker would
touch to capture a group of application keys; a *cache descriptor* is the
pragma that expresses it to the IX-cache. Descriptors decide, per node
visited during a walk, whether to insert or bypass — on affine index
features (level, range), never on addresses.

Three generalized patterns (Table 2):

* :class:`NodeDescriptor` — target one level (usually leaves) and pin
  entries for an expected number of accesses (SpMM, Sorted Sets).
* :class:`LevelDescriptor` — cache a [start, end] band of levels common
  across walks; dynamic tuning redraws the band from per-level utility
  (Scan, Analytics).
* :class:`BranchDescriptor` — cache sub-branches around the moving median
  of recent keys, adjusting width and depth (R-tree, PageRank).
"""

from __future__ import annotations

import statistics
from abc import ABC, abstractmethod
from collections import deque
from typing import Any, Callable, NamedTuple

from repro.indexes.base import IndexNode


class InsertDecision(NamedTuple):
    """Outcome of a descriptor consult for one visited node."""

    insert: bool
    life: int = 0


class WalkContext(NamedTuple):
    """Where in the walk pipeline a visited node sits.

    ``short_circuited`` — the walk started from an IX-cache hit;
    ``position`` — 0 for the first node fetched below the walk's start
    (its parent is on-chip), increasing toward the leaf.
    """

    short_circuited: bool
    position: int


#: Decision used when no descriptor governs an index: greedy insert-all
#: (this is the hardwired METAL-IX behaviour).
INSERT_ALL = InsertDecision(True, 0)
BYPASS = InsertDecision(False, 0)


class BatchFeedback(NamedTuple):
    """Per-batch statistics the controller feeds back for tuning."""

    hits_by_level: dict[int, int]
    insertions_by_level: dict[int, int]
    hit_rate: float
    occupancy: float  # cached entries / capacity


class TouchFilter:
    """Recency-bounded touch counter used to bypass one-shot nodes.

    "Patterns explicitly set margins below which nodes that are not
    frequently used will be bypassed and not cached" (Section 5.4). A node
    qualifies for insertion only once it has been touched ``min_touches``
    times within the recent window, which keeps streaming cold nodes from
    churning the band's hot entries.
    """

    def __init__(self, capacity: int = 4096, min_touches: int = 2) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if min_touches < 1:
            raise ValueError("min_touches must be >= 1")
        self.capacity = capacity
        self.min_touches = min_touches
        # Plain dict as an LRU: insertion order is recency order (pop +
        # reinsert moves a key to the end; the first key is the oldest).
        self._counts: dict[int, int] = {}

    def admit(self, node_id: int) -> bool:
        """Count a touch; True once the node is frequent enough to cache."""
        counts = self._counts
        count = counts.pop(node_id, 0) + 1
        counts[node_id] = count
        if len(counts) > self.capacity:
            del counts[next(iter(counts))]
        return count >= self.min_touches


class ReuseDescriptor(ABC):
    """Base class: decide insert/bypass, observe keys, tune per batch."""

    @abstractmethod
    def decide(
        self, node: IndexNode, height: int, ctx: WalkContext | None = None
    ) -> InsertDecision:
        """Insert-or-bypass for a node visited during a walk."""

    def observe_key(self, key: int) -> None:
        """Called once per walk with the probe key (for moving statistics)."""

    def tune(self, feedback: BatchFeedback) -> None:
        """Dynamic parameter update after a batch of walks (Section 5.4)."""

    def describe(self) -> dict[str, Any]:
        """Current parameter values (recorded per batch for Fig. 22)."""
        return {}

    def admission_threshold(self) -> int:
        """Current admission strictness (1 = admit everything eligible).

        The online :class:`~repro.core.policy.ThresholdTuner` drives this
        knob from batch churn; each pattern maps it onto its own selectivity
        parameter (touch-filter min_touches, branch depth).
        """
        return 1

    def set_admission_threshold(self, n: int) -> None:
        """Apply a tuner-proposed strictness; no-op for fixed patterns."""


class NodeDescriptor(ReuseDescriptor):
    """Target a single level, bypass everything else, pin by lifetime.

    ``target`` is a level from the root (0-based) or the string "leaf".
    ``life_fn`` computes the entry lifetime from the node — for SpMM the
    paper sets "life ... to the number of non-zeros in each column", which
    is the default (the leaf's value count).
    """

    def __init__(
        self,
        target: int | str = "leaf",
        life_fn: Callable[[IndexNode], int] | None = None,
        life: int = 0,
        min_touches: int = 1,
        filter_capacity: int = 4096,
    ) -> None:
        if isinstance(target, str) and target != "leaf":
            raise ValueError(f"target must be a level or 'leaf', got {target!r}")
        self.target = target
        if life_fn is not None and life:
            raise ValueError("give either life_fn or a fixed life, not both")
        if life_fn is None and not life:
            life_fn = _default_life
        self._life_fn = life_fn
        self._life = life
        self._filter = (
            TouchFilter(filter_capacity, min_touches) if min_touches > 1 else None
        )

    def _target_level(self, height: int) -> int:
        if self.target == "leaf":
            return height - 1
        return int(self.target)

    def decide(
        self, node: IndexNode, height: int, ctx: WalkContext | None = None
    ) -> InsertDecision:
        if node.level != self._target_level(height):
            return BYPASS
        if self._filter is not None and not self._filter.admit(node.node_id):
            return BYPASS
        life = self._life if self._life_fn is None else self._life_fn(node)
        return InsertDecision(True, max(0, life))

    def describe(self) -> dict[str, Any]:
        return {"pattern": "node", "target": self.target}

    def admission_threshold(self) -> int:
        return self._filter.min_touches if self._filter is not None else 1

    def set_admission_threshold(self, n: int) -> None:
        n = max(1, n)
        if self._filter is not None:
            self._filter.min_touches = n
        elif n > 1:
            self._filter = TouchFilter(min_touches=n)


def _default_life(node: IndexNode) -> int:
    """Expected accesses: the number of payload entries behind the node."""
    if node.values is not None:
        total = 0
        for v in node.values:
            entries = getattr(v, "entries", None)
            total += len(entries) if entries is not None else 1
        return total
    return len(node.keys) + 1


class LevelDescriptor(ReuseDescriptor):
    """Cache the [start, end] band of levels; tune the band from utility.

    Utility per the paper is #accesses / #nodes-touched at a level. After
    each batch: low band utility widens reach ([start-delta, end]); high
    utility extends short-circuiting ([start, end+delta]).
    """

    def __init__(
        self,
        start: int,
        end: int,
        delta: int = 1,
        low_utility: float = 1.0,
        high_utility: float = 4.0,
        min_level: int = 1,
        max_level: int | None = None,
        min_touches: int = 2,
        filter_capacity: int = 4096,
        frontier: bool = True,
    ) -> None:
        if start > end:
            raise ValueError(f"start {start} > end {end}")
        if low_utility > high_utility:
            raise ValueError("low_utility must be <= high_utility")
        #: With frontier=True (point-query workloads), short-circuited
        #: walks only extend the cached region one level below the hit —
        #: curating a popularity-weighted frontier. With frontier=False
        #: (bursty sweeps like SpMM), every in-band touched node is a
        #: candidate, since reuse follows immediately after first touch.
        self.frontier = frontier
        self.start = start
        self.end = end
        self.delta = delta
        self.low_utility = low_utility
        self.high_utility = high_utility
        self.min_level = min_level
        self.max_level = max_level
        self._filter = TouchFilter(filter_capacity, min_touches)
        self._low_streak = 0

    def _filter_from(self) -> int:
        """Levels at/below this require repeated touches before caching.

        The upper half of the band holds few, heavily-shared nodes — always
        worth caching; the lower half is where streaming cold nodes live.
        """
        return (self.start + self.end + 1) // 2 + 1

    def decide(
        self, node: IndexNode, height: int, ctx: WalkContext | None = None
    ) -> InsertDecision:
        # level <= min(end, height-1)  ==  level <= end and level < height
        level = node.level
        if level < self.start or level > self.end or level >= height:
            return BYPASS
        if self.frontier and ctx is not None and ctx.short_circuited:
            # Frontier growth: the walk already starts from a cached node;
            # only its immediate child (position 0) extends the cached
            # region connectedly — anything deeper would churn as islands.
            if ctx.position > 0:
                return BYPASS
            if not self._filter.admit(node.node_id):
                return BYPASS
            return INSERT_ALL
        if (level >= (self.start + self.end + 1) // 2 + 1
                and not self._filter.admit(node.node_id)):
            return BYPASS
        return INSERT_ALL

    def tune(self, feedback: BatchFeedback) -> None:
        """Redraw the band from per-level utility (= hits / insertions).

        Low utility means the band holds more nodes than the cache sustains
        (deep levels churn before they are re-hit): shift the band *up*
        toward the root, where fewer nodes cover more walks — "the band is
        adjusted to maximize reach". High utility means the band's nodes
        stick and are re-hit: extend toward the leaves to improve
        short-circuiting ("[start, end+delta]"), trimming upper levels that
        no longer carry hits.
        """
        hits = sum(
            count for level, count in feedback.hits_by_level.items()
            if self.start <= level <= self.end
        )
        inserted = sum(
            count for level, count in feedback.insertions_by_level.items()
            if self.start <= level <= self.end
        )
        if inserted == 0 and hits == 0:
            return  # no evidence either way this batch
        utility = hits / inserted if inserted else float("inf")
        if utility < self.low_utility:
            # Hysteresis: one noisy batch must not collapse the band.
            self._low_streak += 1
            if self._low_streak >= 2:
                self.start = max(self.min_level, self.start - self.delta)
                self.end = max(self.start, self.end - self.delta)
                self._low_streak = 0
        else:
            self._low_streak = 0
            if utility > self.high_utility:
                new_end = self.end + self.delta
                if self.max_level is not None:
                    new_end = min(new_end, self.max_level)
                self.end = new_end

    def describe(self) -> dict[str, Any]:
        return {"pattern": "level", "start": self.start, "end": self.end}

    def admission_threshold(self) -> int:
        return self._filter.min_touches

    def set_admission_threshold(self, n: int) -> None:
        self._filter.min_touches = max(1, n)


class BranchDescriptor(ReuseDescriptor):
    """Cache sub-branches around the moving median of recent keys.

    Maintains a window of observed keys; the median is the pivot, and nodes
    within ``halfwidth`` of the pivot and within ``depth`` levels of the
    leaves are cached. Tuning grows depth while hits hold and the cache has
    room, and re-centers/re-widens as the key cluster drifts.
    """

    def __init__(
        self,
        depth: int = 3,
        halfwidth: int | None = None,
        window: int = 256,
        grow_hit_rate: float = 0.5,
        max_depth: int = 12,
    ) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.depth = depth
        self.halfwidth = halfwidth
        self.window = window
        self.grow_hit_rate = grow_hit_rate
        self.max_depth = max_depth
        self._keys: deque[int] = deque(maxlen=window)
        self.pivot: int | None = None

    def observe_key(self, key: int) -> None:
        self._keys.append(key)
        if len(self._keys) >= max(8, self.window // 8):
            self.pivot = int(statistics.median(self._keys))

    def _width(self) -> int:
        if self.halfwidth is not None:
            return self.halfwidth
        if len(self._keys) < 2:
            return 1 << 30
        lo, hi = min(self._keys), max(self._keys)
        return max(1, (hi - lo) // 2)

    def decide(
        self, node: IndexNode, height: int, ctx: WalkContext | None = None
    ) -> InsertDecision:
        if node.level < height - self.depth:
            return BYPASS
        if self.pivot is None:
            return INSERT_ALL
        width = self._width()
        if node.lo is None or node.hi is None:
            return BYPASS
        if node.hi < self.pivot - width or node.lo > self.pivot + width:
            return BYPASS
        return INSERT_ALL

    def tune(self, feedback: BatchFeedback) -> None:
        room = feedback.occupancy < 0.95
        if feedback.hit_rate >= self.grow_hit_rate and room:
            self.depth = min(self.max_depth, self.depth + 1)
        elif feedback.hit_rate < self.grow_hit_rate / 2:
            if self.halfwidth is not None:
                self.halfwidth = self.halfwidth * 2
            elif self.depth > 1 and not room:
                self.depth -= 1

    def describe(self) -> dict[str, Any]:
        return {
            "pattern": "branch",
            "depth": self.depth,
            "pivot": self.pivot,
            "halfwidth": self.halfwidth,
        }

    def admission_threshold(self) -> int:
        # Strictness is inverse depth: the strictest setting caches only
        # the leaf fringe (depth 1), the laxest the whole branch.
        return max(1, self.max_depth + 1 - self.depth)

    def set_admission_threshold(self, n: int) -> None:
        self.depth = min(self.max_depth, max(1, self.max_depth + 1 - max(1, n)))


class CompositeDescriptor(ReuseDescriptor):
    """Combine descriptors (Level+Branch, Node+Branch in Table 2).

    ``mode='any'`` inserts when any member would (union of patterns);
    ``mode='all'`` requires consensus. Life is the max across members that
    voted to insert.
    """

    def __init__(self, members: list[ReuseDescriptor], mode: str = "any") -> None:
        if not members:
            raise ValueError("CompositeDescriptor needs at least one member")
        if mode not in ("any", "all"):
            raise ValueError(f"mode must be 'any' or 'all', got {mode!r}")
        self.members = list(members)
        self.mode = mode

    def decide(
        self, node: IndexNode, height: int, ctx: WalkContext | None = None
    ) -> InsertDecision:
        votes = [m.decide(node, height, ctx) for m in self.members]
        inserting = [v for v in votes if v.insert]
        if self.mode == "any" and inserting:
            return InsertDecision(True, max(v.life for v in inserting))
        if self.mode == "all" and len(inserting) == len(votes):
            return InsertDecision(True, max(v.life for v in inserting))
        return BYPASS

    def observe_key(self, key: int) -> None:
        for member in self.members:
            member.observe_key(key)

    def tune(self, feedback: BatchFeedback) -> None:
        for member in self.members:
            member.tune(feedback)

    def describe(self) -> dict[str, Any]:
        return {"pattern": "composite", "members": [m.describe() for m in self.members]}

    def admission_threshold(self) -> int:
        return max(m.admission_threshold() for m in self.members)

    def set_admission_threshold(self, n: int) -> None:
        for member in self.members:
            member.set_admission_threshold(n)


__all__ = [
    "BatchFeedback",
    "BranchDescriptor",
    "BYPASS",
    "CompositeDescriptor",
    "INSERT_ALL",
    "InsertDecision",
    "LevelDescriptor",
    "NodeDescriptor",
    "ReuseDescriptor",
]
