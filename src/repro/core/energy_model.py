"""Analytic energy model (Fig. 7 tag-match table, Section 5.7 cache energy).

The paper synthesizes its segmented range comparator in Nangate 45nm and
reports the comparator-literature comparison of Fig. 7; we carry those
published numbers as constants. Cache energy is per-access cost x #accesses
(Section 5.7): 9000 fJ per IX-cache access vs 7000 fJ for address/X-cache —
METAL's per-tag range match costs more, but short-circuiting means far
fewer total accesses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import ADDRESS_CACHE_ENERGY_FJ, IXCACHE_ENERGY_FJ, XCACHE_ENERGY_FJ


@dataclass(frozen=True)
class TagMatchDesign:
    """One row of the Fig. 7 comparator-logic table."""

    reference: str
    process_nm: int
    vdd: float
    transistors: int | None
    bits: str
    power_mw: float
    delay_ns: float


#: Fig. 7 verbatim: prior comparator designs vs the paper's segmented
#: range-tag match (depth = 10, entries = 256, Nangate 45nm).
TAG_MATCH_TABLE: tuple[TagMatchDesign, ...] = (
    TagMatchDesign("[11, 55]", 180, 1.8, 800, "64", 0.7, 0.5),
    TagMatchDesign("[41]", 90, 1.0, 1051, "64", 1.0, 0.23),
    TagMatchDesign("[7]", 90, 1.2, None, "64", 0.9, 0.85),
    TagMatchDesign("[19]", 90, 1.0, 1359, "64", 0.8, 0.22),
    TagMatchDesign("METAL (this paper)", 45, 0.85, 1400, "2x32", 0.02, 1.0),
)


@dataclass
class CacheEnergyModel:
    """Energy = per-access cost x #accesses, per cache organization."""

    address_fj: float = ADDRESS_CACHE_ENERGY_FJ
    xcache_fj: float = XCACHE_ENERGY_FJ
    ixcache_fj: float = IXCACHE_ENERGY_FJ

    def cache_energy(self, organization: str, accesses: int) -> float:
        per_access = {
            "address": self.address_fj,
            "fa_opt": self.address_fj,
            "xcache": self.xcache_fj,
            "metal": self.ixcache_fj,
            "metal_ix": self.ixcache_fj,
            "stream": 0.0,
        }.get(organization)
        if per_access is None:
            raise ValueError(f"unknown cache organization {organization!r}")
        return per_access * accesses


#: Per-op compute-tile energy (fJ) for the Fig. 25 on-chip breakdown; a
#: 45nm-class ALU op is a few pJ.
COMPUTE_OP_ENERGY_FJ = 3_000.0
#: Walker + pattern-controller FSM energy per visited node (fJ); the
#: controller "is simply a state machine" so it is cheap.
WALKER_STEP_ENERGY_FJ = 1_500.0
