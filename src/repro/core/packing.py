"""Packing index nodes into 64B cache blocks (Fig. 5).

Three cases:

* Case 1 — node size == block size: one entry tagged with the exact range.
* Case 2 — node size > block size: the node is split into sub-range
  entries, each holding a slice of the child pointers.
* Case 3 — node size < block size: adjacent same-level nodes can be
  coalesced into one entry tagged with the super-range (done
  opportunistically by the IX-cache at insert time; :func:`can_coalesce`
  is the legality check).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.range_tag import RangeTag
from repro.indexes.base import IndexNode
from repro.params import BLOCK_SIZE, KEY_BYTES, NS_STRIDE, PTR_BYTES

_NEG_INF = float("-inf")
_POS_INF = float("inf")


def blocks_needed(node: IndexNode, block_bytes: int = BLOCK_SIZE) -> int:
    """Number of cache blocks the node's keys + pointers occupy."""
    return max(1, -(-node.byte_size() // block_bytes))


def pack_node(
    node: IndexNode,
    ns: Callable[[int], int],
    block_bytes: int = BLOCK_SIZE,
) -> list[tuple[RangeTag, IndexNode]]:
    """Split a node into (tag, node) entries, one per cache block.

    ``ns`` maps raw keys into the namespaced key space of the shared cache.
    Case 1 yields a single exact-range entry. Case 2 splits the children
    into contiguous groups, one entry per block, each tagged with the
    sub-range it can resolve ("Each entry holds one of the child pointers",
    generalized to however many fit a block).
    """
    if node.lo is None or node.hi is None:
        return []
    if node.lo == _NEG_INF or node.hi == _POS_INF:
        # Sentinel nodes (skip-list heads) have no representable range and
        # would falsely cover other buckets' keys once clamped.
        return []
    lo, hi = ns(node.lo), ns(node.hi)
    if not node.keys:
        # Keyless nodes (radix page-table nodes index by address bits, not
        # stored keys) cannot be subdivided: one exact-range entry.
        return [(RangeTag(lo, hi, node.level), node)]
    n_blocks = blocks_needed(node, block_bytes)
    if n_blocks == 1:
        return [(RangeTag(lo, hi, node.level), node)]

    if node.children:
        per_block = max(1, -(-len(node.children) // n_blocks))
        entries: list[tuple[RangeTag, IndexNode]] = []
        for start in range(0, len(node.children), per_block):
            group = node.children[start : start + per_block]
            entries.append(
                (RangeTag(ns(group[0].lo), ns(group[-1].hi), node.level), node)
            )
        return entries

    # Oversized leaf: split its key list into per-block sub-ranges.
    keys = node.keys
    per_block = max(1, (block_bytes // (KEY_BYTES + PTR_BYTES)))
    entries = []
    for start in range(0, len(keys), per_block):
        chunk = keys[start : start + per_block]
        entries.append((RangeTag(ns(chunk[0]), ns(chunk[-1]), node.level), node))
    return entries


def can_coalesce(
    a: RangeTag,
    b: RangeTag,
    a_bytes: int,
    b_bytes: int,
    block_bytes: int = BLOCK_SIZE,
) -> bool:
    """Case-3 legality: same level and namespace, combined fit, neighbors.

    Only *adjacent-ish* nodes coalesce (Fig. 5 fuses [7-8] with [9-12]):
    the gap between the ranges must not exceed their combined width, so a
    super-range never claims large key regions neither node covers — and
    never spans two different indexes' namespaces.
    """
    if a.level != b.level:
        return False
    if a_bytes + b_bytes > block_bytes:
        return False
    if a.lo // NS_STRIDE != b.lo // NS_STRIDE:
        return False
    if a.overlaps(b):
        return False
    gap = max(a.lo, b.lo) - min(a.hi, b.hi) - 1
    return gap <= a.width() + b.width()


def coalesced_tag(a: RangeTag, b: RangeTag) -> RangeTag:
    """The super-range tag covering both coalesced nodes."""
    return RangeTag(min(a.lo, b.lo), max(a.hi, b.hi), a.level)
