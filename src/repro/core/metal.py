"""METAL facade: the two evaluated configurations.

* :class:`MetalIX` — the stand-alone IX-cache with the hardwired utility
  policy (4-bit saturating counters, greedy insert-all). Section 5's
  "METAL-IX" showcases the cache organization without patterns.
* :class:`Metal` — IX-cache + pattern controller with descriptors and
  (optionally) dynamic parameter tuning. Section 5's "METAL".

The memory system drives these through a tiny interface: ``probe`` on walk
start, ``begin_walk``/``consider``/``end_walk`` along the walk pipeline.
"""

from __future__ import annotations

from typing import Callable

from repro.core.controller import PatternController
from repro.core.descriptors import ReuseDescriptor, WalkContext
from repro.core.ix_cache import IXCache
from repro.core.policy import ThresholdTuner
from repro.indexes.base import IndexNode
from repro.params import CacheParams, IXCACHE_ENERGY_FJ


class MetalIX:
    """IX-cache with the hardwired insert-all + utility-eviction policy."""

    name = "metal_ix"

    def __init__(self, params: CacheParams | None = None, **cache_kwargs) -> None:
        if params is None:
            params = CacheParams(e_access=IXCACHE_ENERGY_FJ)
        self.cache = IXCache(params, **cache_kwargs)
        self.controller: PatternController | None = None

    def attach_obs(self, tracer, registry=None, prefix: str = "ix") -> None:
        """Wire tracing through the IX-cache and pattern controller."""
        self.cache.attach_obs(tracer, registry, prefix)
        if self.controller is not None:
            self.controller.tracer = tracer

    # ------------------------------------------------------------------ #
    # Walk pipeline interface
    # ------------------------------------------------------------------ #

    def probe(self, ns_key: int) -> IndexNode | None:
        """Hit path: return the deepest cached node covering the key."""
        return self.cache.probe(ns_key)

    def begin_walk(self, index_id: int, key: int) -> None:
        if self.controller is not None:
            self.controller.begin_walk(index_id, key)

    def consider(
        self,
        index_id: int,
        node: IndexNode,
        height: int,
        ns: Callable[[int], int],
        ctx: "WalkContext | None" = None,
        key: int | None = None,
    ) -> bool:
        """Insert-or-bypass a node fetched during the miss-path walk."""
        if self.controller is None:
            return self.cache.insert(node, ns, key=key)
        decision = self.controller.decide(index_id, node, height, ctx)
        if not decision.insert:
            self.cache.note_bypass()
            return False
        return self.cache.insert(node, ns, life=decision.life, key=key)

    def end_walk(self) -> None:
        if self.controller is not None:
            self.controller.end_walk()

    @property
    def stats(self):
        return self.cache.stats


class Metal(MetalIX):
    """IX-cache managed by reuse patterns (+ optional dynamic tuning)."""

    name = "metal"

    def __init__(
        self,
        descriptors: ReuseDescriptor | dict[int, ReuseDescriptor],
        params: CacheParams | None = None,
        batch_walks: int = 1_000,
        tune: bool = True,
        tuner: ThresholdTuner | dict | None = None,
        **cache_kwargs,
    ) -> None:
        super().__init__(params, **cache_kwargs)
        if isinstance(tuner, dict):
            tuner = ThresholdTuner(**tuner)
        self.controller = PatternController(
            descriptors, self.cache, batch_walks=batch_walks, tune=tune, tuner=tuner
        )
