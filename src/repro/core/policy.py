"""Pluggable IX-cache replacement policies and the reuse-threshold tuner.

The paper evaluates one fixed replacement scheme: 4-bit saturating utility
counters with SRRIP-style insertion and survivor aging (Section 5). This
module makes that scheme one point in a pluggable axis so the policy lab
(:mod:`repro.bench.policy_lab`) can sweep alternatives against it:

* :class:`UtilityRRIPPolicy` — the paper's scheme, byte-identical to the
  previously hard-coded ``_evict_from``/``_place_in_set`` victim logic.
* :class:`TrueLRUPolicy` — exact per-set LRU over full access stamps.
* :class:`MultiStepLRUPolicy` — set-wide approximate LRU that only
  distinguishes ``steps`` recency classes (Multi-step LRU, arXiv
  2112.09981): victims come from the oldest class, tie-broken by
  insertion order, for a tag cost of ``ceil(log2(steps))`` bits instead
  of a full timestamp.
* :class:`FrequencyPolicy` — LFU-style hit counting with per-eviction
  aging; one-touch streaming entries churn out first.
* :class:`LevelCostPolicy` — cost-aware utility: refilling a deep entry
  (near the leaves) costs a longer walk from the last cached ancestor
  than refilling a shallow one, so depth is folded into the victim score
  and low-utility *shallow* entries go first.

Policies keep their per-entry state on ``IXEntry.utility`` (the paper's
counter) and ``IXEntry.stamp`` (a policy-defined scratch word: LRU tick,
hit count). The cache consults the policy at four points — the protocol
below — and everything else (pins, set geometry, coalescing, wide-entry
spill) stays policy-independent.

The :class:`ThresholdTuner` is the other half of the lab: an online
controller that retunes the reuse patterns' admission thresholds
(Node/Level ``min_touches``, Branch depth) between batches from the
cache's own eviction/insertion counters, extending the paper's static
dynamic-tuning result (Section 5.4) to run time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (ix_cache -> policy)
    from repro.core.ix_cache import IXEntry

#: 4-bit saturating utility counter ceiling ("we track utility by using
#: 4-bit saturating counters (one per entry)", Section 5).
UTILITY_MAX = 15
#: Utility a fresh entry starts with: high enough to survive a few
#: evictions until its first re-hit (SRRIP-style insertion position).
UTILITY_INSERT = 3

#: Tag-metadata energy model for the policy lab's Pareto axis. Every
#: probe's match stage reads the replacement metadata of each way it
#: compares; hits and insertions write one entry's metadata back. The
#: absolute figures are nominal — what the Pareto table measures is the
#: *ratio* between policies, which is set by their per-entry bit widths.
TAG_READ_FJ_PER_BIT = 2.0
TAG_WRITE_FJ_PER_BIT = 4.0


def tag_energy_fj(
    tag_bits: int, accesses: int, hits: int, insertions: int, ways: int = 16
) -> float:
    """Replacement-metadata energy of one run, in femtojoules.

    ``accesses`` probes each read ``ways`` entries' metadata; every hit
    and every insertion writes one entry's metadata back.
    """
    reads = accesses * ways * tag_bits * TAG_READ_FJ_PER_BIT
    writes = (hits + insertions) * tag_bits * TAG_WRITE_FJ_PER_BIT
    return reads + writes


class ReplacementPolicy(ABC):
    """Victim selection + per-entry metadata maintenance for the IX-cache.

    The cache calls exactly four hooks:

    * :meth:`on_insert` — a new entry was placed (set its metadata).
    * :meth:`on_hit` — an entry matched a probe or absorbed a duplicate
      insertion (promote it).
    * :meth:`select_victim` — choose one entry to evict from a non-empty
      candidate list. Candidates are resident and (whenever any exist)
      unpinned; the choice must be deterministic given entry state.
    * :meth:`epoch_decay` — age the survivors of one eviction (the
      RRIP-style renormalization step; a no-op for recency policies).

    ``clear()`` must reset any cross-entry state (ticks, counters) so a
    cleared cache behaves like a fresh one.
    """

    #: Registry key; subclasses override.
    name: str = "abstract"
    #: Replacement-metadata bits per entry (the Pareto energy axis).
    tag_bits: int = 0

    @abstractmethod
    def on_insert(self, entry: "IXEntry") -> None:
        """Initialize a newly placed entry's replacement metadata."""

    @abstractmethod
    def on_hit(self, entry: "IXEntry") -> None:
        """Promote an entry that matched a probe (or duplicate insert)."""

    @abstractmethod
    def select_victim(self, candidates: "list[IXEntry]") -> "IXEntry":
        """Pick the entry to evict. ``candidates`` is never empty."""

    def epoch_decay(self, survivors: "Iterable[IXEntry]", victim: "IXEntry") -> None:
        """Age the set's survivors after one eviction (default: no-op)."""

    def clear(self) -> None:
        """Reset cross-entry policy state (default: none to reset)."""

    def describe(self) -> dict[str, Any]:
        return {"policy": self.name, "tag_bits": self.tag_bits}


class UtilityRRIPPolicy(ReplacementPolicy):
    """The paper's fixed scheme: 4-bit saturating utility + aging.

    Byte-identical to the pre-refactor hard-coded victim logic: insert at
    utility 3, saturating +1 per hit, evict the (utility, seq)-minimal
    candidate, and — when the victim had non-zero utility — age every
    survivor one notch so stale saturated entries eventually churn.
    """

    name = "utility_rrip"
    tag_bits = 4

    def on_insert(self, entry: "IXEntry") -> None:
        entry.utility = UTILITY_INSERT

    def on_hit(self, entry: "IXEntry") -> None:
        if entry.utility < UTILITY_MAX:
            entry.utility += 1

    def select_victim(self, candidates: "list[IXEntry]") -> "IXEntry":
        return min(candidates, key=lambda e: (e.utility, e.seq))

    def epoch_decay(self, survivors: "Iterable[IXEntry]", victim: "IXEntry") -> None:
        if victim.utility > 0:
            for entry in survivors:
                entry.utility = max(0, entry.utility - 1)


class TrueLRUPolicy(ReplacementPolicy):
    """Exact LRU: a global access tick stamped on every touch.

    The precision reference for :class:`MultiStepLRUPolicy`; its tag cost
    (a full timestamp per entry) is what the multi-step variant trades
    away.
    """

    name = "lru"
    tag_bits = 32

    def __init__(self) -> None:
        self._tick = 0

    def _touch(self, entry: "IXEntry") -> None:
        self._tick += 1
        entry.stamp = self._tick

    on_insert = _touch
    on_hit = _touch

    def select_victim(self, candidates: "list[IXEntry]") -> "IXEntry":
        return min(candidates, key=lambda e: (e.stamp, e.seq))

    def clear(self) -> None:
        self._tick = 0


class MultiStepLRUPolicy(TrueLRUPolicy):
    """Set-wide approximate LRU with ``steps`` distinguishable classes.

    Entries are stamped exactly like :class:`TrueLRUPolicy` (modelling the
    hardware's per-access promotion), but the victim selector only sees
    ``steps`` recency classes: candidates are ranked by stamp and the
    oldest ``ceil(n / steps)`` of them form the eviction class, inside
    which the hardware cannot distinguish order — the tie-break falls
    back to insertion order (``seq``), the approximation the reduced tag
    width buys. With ``steps >= len(candidates)`` every candidate is its
    own class and the choice degenerates to exact LRU.
    """

    name = "multistep_lru"

    def __init__(self, steps: int = 4) -> None:
        super().__init__()
        if steps < 1:
            raise ValueError("steps must be >= 1")
        self.steps = steps
        self.tag_bits = max(1, (steps - 1).bit_length())

    def select_victim(self, candidates: "list[IXEntry]") -> "IXEntry":
        n = len(candidates)
        if self.steps >= n:
            return min(candidates, key=lambda e: (e.stamp, e.seq))
        ranked = sorted(candidates, key=lambda e: (e.stamp, e.seq))
        # Oldest recency class: ranks whose bucket (rank * steps // n) is 0.
        oldest = [e for rank, e in enumerate(ranked) if rank * self.steps // n == 0]
        return min(oldest, key=lambda e: e.seq)

    def describe(self) -> dict[str, Any]:
        return {**super().describe(), "steps": self.steps}


class FrequencyPolicy(ReplacementPolicy):
    """LFU with per-eviction aging: hit counts decide, streams churn out.

    New entries start at count 0 (no SRRIP grace period), so one-touch
    streaming insertions are the first to go; each eviction ages every
    survivor one count so formerly-hot entries cannot squat forever.
    """

    name = "freq"
    tag_bits = 8
    _COUNT_MAX = 255

    def on_insert(self, entry: "IXEntry") -> None:
        entry.stamp = 0

    def on_hit(self, entry: "IXEntry") -> None:
        if entry.stamp < self._COUNT_MAX:
            entry.stamp += 1

    def select_victim(self, candidates: "list[IXEntry]") -> "IXEntry":
        return min(candidates, key=lambda e: (e.stamp, e.seq))

    def epoch_decay(self, survivors: "Iterable[IXEntry]", victim: "IXEntry") -> None:
        for entry in survivors:
            if entry.stamp > 0:
                entry.stamp -= 1


class LevelCostPolicy(UtilityRRIPPolicy):
    """Utility weighted by refill cost: deep entries are dearer to lose.

    Re-establishing an entry at level L costs a walk of L node fetches
    from the root (the refill asymmetry: a missing level-2 entry refills
    in 2 fetches, a level-5 one in 5), and a deep cached entry also
    short-circuits more of every walk it serves. The victim score folds
    the entry's level into the utility comparison — among similar
    utilities, shallow entries go first — while hit promotion and
    survivor aging stay the paper's.
    """

    name = "level_cost"
    tag_bits = 8  # 4-bit utility + a copy of the 4-bit level field
    #: How many utility notches one level of depth is worth.
    LEVEL_WEIGHT = 1

    def select_victim(self, candidates: "list[IXEntry]") -> "IXEntry":
        weight = self.LEVEL_WEIGHT
        return min(
            candidates,
            key=lambda e: (2 * e.utility + weight * e.tag.level, e.utility, e.seq),
        )


#: Registry of constructible policies, in lab/report order.
POLICIES: dict[str, type[ReplacementPolicy]] = {}


def register_policy(cls: type[ReplacementPolicy]) -> type[ReplacementPolicy]:
    """Add a policy class to the registry (keyed by its ``name``)."""
    if not cls.name or cls.name == "abstract":
        raise ValueError("policy classes must define a concrete name")
    POLICIES[cls.name] = cls
    return cls


for _cls in (UtilityRRIPPolicy, TrueLRUPolicy, MultiStepLRUPolicy,
             FrequencyPolicy, LevelCostPolicy):
    register_policy(_cls)

DEFAULT_POLICY = UtilityRRIPPolicy.name


def make_policy(
    spec: "str | ReplacementPolicy | None", **kwargs: Any
) -> ReplacementPolicy:
    """Build a policy from a registry name (or pass an instance through)."""
    if spec is None:
        spec = DEFAULT_POLICY
    if isinstance(spec, ReplacementPolicy):
        return spec
    try:
        cls = POLICIES[spec]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {spec!r} "
            f"(choose from {', '.join(sorted(POLICIES))})"
        ) from None
    return cls(**kwargs)


class ThresholdTuner:
    """Online reuse-threshold controller driven by cache churn.

    After every controller batch the tuner reads one counter — *churn*,
    the batch's evictions over its insertions — and nudges each governed
    descriptor's admission threshold one notch: churn above
    ``high_churn`` means insertions are evicting each other before
    re-hits arrive, so admission tightens (streaming nodes must prove
    themselves with more touches); churn below ``low_churn`` means the
    cache digests its insertions, so admission relaxes to grow reach.
    Proposals are monotone in the driving counter and clamp to
    ``[min_threshold, max_threshold]`` — both properties are pinned by
    the tuner property suite.
    """

    def __init__(
        self,
        low_churn: float = 0.25,
        high_churn: float = 0.75,
        min_threshold: int = 1,
        max_threshold: int = 8,
        step: int = 1,
    ) -> None:
        if low_churn > high_churn:
            raise ValueError("low_churn must be <= high_churn")
        if min_threshold < 1 or min_threshold > max_threshold:
            raise ValueError("need 1 <= min_threshold <= max_threshold")
        if step < 1:
            raise ValueError("step must be >= 1")
        self.low_churn = low_churn
        self.high_churn = high_churn
        self.min_threshold = min_threshold
        self.max_threshold = max_threshold
        self.step = step

    def propose(self, churn: float, current: int) -> int:
        """Next admission threshold. Monotone non-decreasing in ``churn``."""
        if churn > self.high_churn:
            proposed = current + self.step
        elif churn < self.low_churn:
            proposed = current - self.step
        else:
            proposed = current
        return max(self.min_threshold, min(self.max_threshold, proposed))

    def describe(self) -> dict[str, Any]:
        return {
            "low_churn": self.low_churn,
            "high_churn": self.high_churn,
            "min_threshold": self.min_threshold,
            "max_threshold": self.max_threshold,
            "step": self.step,
        }


__all__ = [
    "DEFAULT_POLICY",
    "FrequencyPolicy",
    "LevelCostPolicy",
    "MultiStepLRUPolicy",
    "POLICIES",
    "ReplacementPolicy",
    "TAG_READ_FJ_PER_BIT",
    "TAG_WRITE_FJ_PER_BIT",
    "ThresholdTuner",
    "TrueLRUPolicy",
    "UTILITY_INSERT",
    "UTILITY_MAX",
    "UtilityRRIPPolicy",
    "make_policy",
    "register_policy",
    "tag_energy_fj",
]
