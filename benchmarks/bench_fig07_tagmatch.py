"""Fig. 7 — tag-match logic table (published synthesis constants)."""

from conftest import run_once

from repro.bench.tagmatch import format_fig7, run_tagmatch
from repro.params import IXCACHE_ENERGY_FJ


def test_fig07_tagmatch(benchmark):
    designs = run_once(benchmark, run_tagmatch)
    print()
    print(format_fig7(designs))
    metal = designs[-1]
    assert metal.process_nm == 45
    assert metal.power_mw < min(d.power_mw for d in designs[:-1])
    assert IXCACHE_ENERGY_FJ > 0
