"""Ablations of METAL's design choices (DESIGN.md supplemental axes)."""

from conftest import run_once

from repro.bench.ablation import (
    format_geometry,
    format_shared_vs_private,
    format_toggles,
    run_geometry_sweep,
    run_mechanism_toggles,
    run_shared_vs_private,
)


def test_ablation_geometry(benchmark, workloads):
    results = run_once(
        benchmark, run_geometry_sweep, workloads["scan"],
        ways_options=(1, 4, 16),
    )
    print()
    print(format_geometry(results))
    # Paper supplemental: 16-way is the sweet spot; direct-mapped loses.
    assert results[16].makespan <= results[1].makespan * 1.02


def test_ablation_shared_vs_private(benchmark, workloads):
    result = run_once(
        benchmark, run_shared_vs_private, workloads["scan"], partitions=4
    )
    print()
    print(format_shared_vs_private(result))
    # Paper supplemental: "Shared is best since access every 70-180 cycles".
    assert result.shared.cache_stats.hit_rate >= result.private_hit_rate


def test_ablation_mechanisms(benchmark, workloads):
    results = run_once(benchmark, run_mechanism_toggles, workloads["scan"])
    print()
    print(format_toggles(results))
    by_label = {r.label: r.run for r in results}
    # Next-line prefetching cannot predict data-dependent child pointers:
    # it only adds traffic on index walks.
    assert (by_label["address + prefetch"].dram.accesses
            > by_label["address"].dram.accesses)


def test_ablation_scheduling(benchmark, workloads):
    from repro.bench.ablation import format_scheduling, run_scheduling

    results = run_once(benchmark, run_scheduling, workloads["scan"])
    print()
    print(format_scheduling(results))
    # Key-adjacent issue shares index paths: traffic never increases.
    assert (results["key_sorted"].index_dram_accesses
            <= results["fifo"].index_dram_accesses)
