"""Resilience curves under deterministic fault injection (repro.faults).

Sweeps a uniform fault-plan rate over the METAL cell and asserts graceful
degradation: makespan grows monotonically with the fault rate (within the
documented tolerance), never collapses, and the resilience ledger accounts
for every issued walk at every point.
"""

from conftest import run_once

from repro.bench.chaos import (
    DEFAULT_RATES,
    check_graceful,
    format_chaos,
    run_chaos,
)


def test_chaos_resilience_curve(benchmark, bench_scale):
    curve = run_once(
        benchmark, run_chaos, "scan", system="metal",
        rates=DEFAULT_RATES, scale=bench_scale,
    )
    print()
    print(format_chaos(curve))
    problems = check_graceful(curve)
    assert not problems, problems
    # The fault-free anchor carries no ledger; every faulted point does,
    # with zero lost requests and a strictly positive injection count.
    assert curve.points[0].faults is None
    for point in curve.points[1:]:
        ledger = point.faults
        assert ledger is not None
        assert ledger["faults_injected"] > 0
        assert (
            ledger["walks_completed"] + ledger["walks_degraded"]
            == ledger["walks_total"]
            == point.num_walks
        )
    # Faults must actually hurt: the 10% point is measurably slower than
    # the fault-free anchor (else the hooks are not wired).
    assert curve.points[-1].makespan > curve.points[0].makespan
