"""Fig. 21 — IX-cache occupancy by index level, METAL-IX vs METAL."""

from conftest import run_once

from repro.bench.occupancy import format_fig21, run_occupancy


def test_fig21_occupancy(benchmark, workloads, bench_scale):
    results = run_once(
        benchmark, run_occupancy, scale=bench_scale, prebuilt=workloads
    )
    print()
    print(format_fig21(results))
    by_name = {r.workload: r for r in results}
    # SpMM-S fibers are at most 3 levels, so occupancy stays in levels 0-2.
    spmm_s = by_name["spmm_s"]
    for occupancy in spmm_s.by_level.values():
        assert all(level <= 2 for level in occupancy)
    # Something must actually be cached everywhere.
    for result in results:
        for occupancy in result.by_level.values():
            assert sum(occupancy.values()) > 0
