"""Robustness of headline ratios across workload generator seeds."""

from conftest import run_once

from repro.bench.seeds import format_seed_sweep, run_seed_sweep


def test_seed_robustness(benchmark, bench_scale):
    sweep = run_once(
        benchmark, run_seed_sweep, "scan", seeds=(0, 1, 2), scale=bench_scale
    )
    print()
    print(format_seed_sweep(sweep))
    # The METAL-vs-stream advantage must hold for every seed, with bounded
    # spread (these are deterministic simulations of synthetic inputs).
    assert all(v > 1.5 for v in sweep.ratios["stream"])
    assert sweep.stdev("stream") < sweep.mean("stream") * 0.3
