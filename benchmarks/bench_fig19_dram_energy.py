"""Fig. 19 — normalized DRAM dynamic energy."""

from conftest import run_once

from repro.bench.energy import format_fig19, run_energy
from repro.bench.format import geomean


def test_fig19_dram_energy(benchmark, workloads, bench_scale):
    results = run_once(
        benchmark, run_energy, scale=bench_scale, prebuilt=workloads
    )
    print()
    print(format_fig19(results))
    vs_stream = geomean([
        1.0 / max(1e-9, r.dram_normalized()["metal"]) for r in results
    ])
    vs_x = geomean([
        r.dram_normalized()["xcache"] / max(1e-9, r.dram_normalized()["metal"])
        for r in results
    ])
    print(f"\nMETAL DRAM-energy saving: {vs_stream:.2f}x vs stream "
          f"(paper: 1.9x), {vs_x:.2f}x vs X-cache (paper: 1.6x)")
    assert vs_stream > 1.5
    assert vs_x > 1.2
    for result in results:
        # METAL never consumes more DRAM energy than streaming.
        assert result.dram_normalized()["metal"] <= 1.0
