"""Fig. 16 — working set: fraction of index walk traffic served by DRAM."""

from conftest import run_once

from repro.bench.trends import format_fig16, run_trends


def test_fig16_working_set(benchmark, workloads, bench_scale):
    results = run_once(
        benchmark, run_trends, scale=bench_scale, prebuilt=workloads
    )
    print()
    print(format_fig16(results))
    for trend in results:
        ws = trend.working_sets()
        # Observation 4: METAL short-circuits more walks than X-cache,
        # reducing the working set.
        assert ws["metal"] < ws["xcache"]
        # Streaming by definition pulls all of it from DRAM.
        assert ws["stream"] > 0.99
