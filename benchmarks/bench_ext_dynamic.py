"""Extension — METAL on a mutating index (invalidation path end-to-end)."""

from conftest import run_once

from repro.bench.dynamic import format_dynamic_mix, run_dynamic_mix


def test_dynamic_mix(benchmark):
    results = run_once(
        benchmark, run_dynamic_mix, num_records=3_000, num_ops=2_500
    )
    print()
    print(format_dynamic_mix(results))
    by_name = {r.system: r for r in results}
    # Every system stays functionally coherent under churn...
    assert all(r.invalidations_survived for r in results)
    # ...and the IX-cache still beats streaming despite invalidations.
    assert by_name["metal_ix"].makespan < by_name["stream"].makespan
