"""Fig. 22 — level-pattern adaptivity with parameter tuning over windows."""

from conftest import run_once

from repro.bench.adaptivity import format_fig22, run_adaptivity


def test_fig22_adaptivity(benchmark, workloads, bench_scale):
    result = run_once(
        benchmark, run_adaptivity, scale=bench_scale,
        prebuilt=workloads["scan"],
    )
    print()
    print(format_fig22(result))
    assert len(result.windows) >= 5
    # The cached frontier deepens once the cache warms: later windows
    # short-circuit from deeper levels than the first window.
    first = result.windows[0]["mean_start_level"]
    later = result.windows[-1]["mean_start_level"]
    assert later > first
