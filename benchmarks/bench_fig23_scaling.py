"""Fig. 23 — METAL vs index size (records and depth sweeps on JOIN)."""

from conftest import run_once

from repro.bench.scaling import (
    format_fig23a,
    format_fig23b,
    run_depth_sweep,
    run_records_sweep,
)


def test_fig23a_records_sweep(benchmark):
    cells = run_once(
        benchmark, run_records_sweep,
        scales=(0.1, 0.2), cache_sizes=(4 * 1024, 8 * 1024),
    )
    print()
    print(format_fig23a(cells))
    # A larger cache never makes walks slower at a given database size.
    for scale in (0.1, 0.2):
        small = cells[(scale, 4 * 1024)]["metal"]
        large = cells[(scale, 8 * 1024)]["metal"]
        assert large <= small * 1.15


def test_fig23b_depth_sweep(benchmark):
    cells = run_once(
        benchmark, run_depth_sweep, depths=(6, 9, 12, 15), scale=0.15
    )
    print()
    print(format_fig23b(cells))
    heights = sorted(cells)
    assert len(heights) >= 2
    # Deeper indexes mean longer walks for both systems...
    assert cells[heights[-1]]["metal"] > cells[heights[0]]["metal"]
    # ...and METAL stays at or below METAL-IX's latency throughout.
    for height, cell in cells.items():
        assert cell["metal"] <= cell["metal_ix"] * 1.1, height
