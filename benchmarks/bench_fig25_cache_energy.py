"""Fig. 25 — cache energy and on-chip energy breakdown."""

from conftest import run_once

from repro.bench.energy import format_fig25, run_energy


def test_fig25_cache_energy(benchmark, workloads, bench_scale):
    results = run_once(
        benchmark, run_energy, scale=bench_scale, prebuilt=workloads
    )
    print()
    print(format_fig25(results))
    for result in results:
        energy = result.cache_energy_fj()
        addr_acc = result.runs["address"].cache_stats.accesses
        metal_acc = result.runs["metal"].cache_stats.accesses
        # METAL probes once per walk; the address cache probes per level —
        # total accesses drop by far more than the 9/7 per-access premium.
        assert metal_acc < addr_acc
        assert energy["metal"] < energy["address"]
        # Breakdown fractions sum to ~1.
        breakdown = result.onchip_breakdown()
        assert abs(sum(breakdown.values()) - 1.0) < 1e-9
