"""Scale sensitivity — the headline orderings must hold as workloads grow."""

from conftest import run_once

from repro.bench.scale_sensitivity import (
    format_scale_sensitivity,
    orderings_stable,
    run_scale_sensitivity,
)


def test_scale_sensitivity(benchmark):
    points = run_once(
        benchmark, run_scale_sensitivity, "scan", scales=(0.1, 0.25, 0.5)
    )
    print()
    print(format_scale_sensitivity(points, "scan"))
    assert orderings_stable(points)
    # METAL's advantage over X-cache does not collapse with scale.
    ratios = [p.metal_vs_xcache for p in points]
    assert min(ratios) > 1.3
    # Bigger scale -> bigger index, more walks (sanity of the sweep).
    assert points[-1].index_blocks > points[0].index_blocks
