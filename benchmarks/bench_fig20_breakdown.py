"""Fig. 20 — speedup breakdown: IX-cache / +patterns / +parameter tuning."""

from conftest import run_once

from repro.bench.breakdown import format_fig20, run_breakdown


def test_fig20_breakdown(benchmark, workloads, bench_scale):
    results = run_once(
        benchmark, run_breakdown, scale=bench_scale, prebuilt=workloads
    )
    print()
    print(format_fig20(results))
    for r in results:
        # The IX-cache alone improves over streaming...
        assert r.ix > 1.0
        # ...and the full system (patterns + params) does not lose to the
        # hardwired policy (small tolerance for simulation noise).
        assert r.params >= r.ix * 0.92, r.workload
