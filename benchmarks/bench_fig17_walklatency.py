"""Fig. 17 — average walk latency across cache organizations."""

from conftest import run_once

from repro.bench.format import geomean
from repro.bench.trends import format_fig17, run_trends


def test_fig17_walk_latency(benchmark, workloads, bench_scale):
    results = run_once(
        benchmark, run_trends, scale=bench_scale, prebuilt=workloads
    )
    print()
    print(format_fig17(results))
    metal_vs_x = geomean([
        t.walk_latencies()["xcache"] / max(1e-9, t.walk_latencies()["metal"])
        for t in results
    ])
    metal_vs_fa = geomean([
        t.walk_latencies()["fa_opt"] / max(1e-9, t.walk_latencies()["metal"])
        for t in results
    ])
    print(f"\nMETAL walk-latency advantage: {metal_vs_x:.2f}x vs X-cache "
          f"(paper: 1.5x), {metal_vs_fa:.2f}x vs FA-OPT (paper: 1.8x)")
    # Observation 5's ordering: METAL's walks are faster than X-cache's.
    assert metal_vs_x > 1.2
