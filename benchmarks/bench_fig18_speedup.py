"""Fig. 18 — speedup over streaming, address cache, and X-cache."""

from conftest import run_once

from repro.bench.speedup import format_fig18, headline_ratios, run_speedups


def test_fig18_speedup(benchmark, workloads, bench_scale):
    results = run_once(
        benchmark, run_speedups, scale=bench_scale, prebuilt=workloads
    )
    print()
    print(format_fig18(results))
    ratios = headline_ratios(results)
    # Shape: METAL wins against streaming and X-cache on geomean
    # (paper: 7.8x / 2.4x; compressed at reduced scale — see EXPERIMENTS.md).
    assert ratios["stream"] > 2.0
    assert ratios["xcache"] > 1.5
    assert ratios["address"] > 1.0
    # Shallow variants show much smaller advantage than their deep twins.
    by_name = {r.workload: r.speedups() for r in results}
    assert by_name["spmm"]["metal"] / by_name["spmm"]["xcache"] > 1.5
    assert by_name["sets"]["metal"] > by_name["sets_s"]["metal"]
