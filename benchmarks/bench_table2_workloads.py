"""Table 2 — workload setup, regenerated from the live suite."""

from conftest import run_once

from repro.bench.tables import format_table2


def test_table2_workloads(benchmark, workloads):
    table = run_once(benchmark, format_table2, list(workloads.values()))
    print()
    print(table)
    assert len(workloads) == 10
    assert {w.dsa for w in workloads.values()} == {"gorgon", "capstan", "aurochs"}
