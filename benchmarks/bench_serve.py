"""Saturation curve of the open-loop serving layer (repro.serve).

Sweeps offered load over the calibrated client -> balancer -> 4-tile
topology and asserts the queueing-theory shape the M/D/1 oracle tests
pin analytically: flat latency below the knee, a tail blow-up past it,
and throughput that saturates at the fleet's service capacity while
utilization approaches 1.
"""

from conftest import run_once

from repro.bench.serve import (
    DEFAULT_LOADS,
    format_serve,
    run_serve_sweep,
)


def test_serve_saturation_curve(benchmark, bench_scale):
    curve = run_once(
        benchmark, run_serve_sweep, "scan", system="metal",
        loads=DEFAULT_LOADS, scale=bench_scale, duration_ms=5,
    )
    print()
    print(format_serve(curve))

    points = {p.load: p for p in curve.points}
    assert all(p.completed == p.offered > 0 for p in curve.points)

    # The calibrated sweep must find its knee at or just past load 1.0.
    knee = curve.knee()
    assert knee is not None, "sweep never saturated"
    assert knee >= 0.8, f"knee at load {knee:g} — calibration is off"

    # Past saturation the tail blows up relative to light load...
    lightest = curve.points[0]
    heaviest = curve.points[-1]
    assert heaviest.p99 > 10 * lightest.p99
    # ...but throughput stops growing: the last two points are within a
    # few percent of each other (the service ceiling), and well above
    # the light-load completion rate.
    ceiling = points[DEFAULT_LOADS[-2]].throughput_rps
    assert abs(heaviest.throughput_rps - ceiling) < 0.1 * ceiling
    assert heaviest.throughput_rps > 1.5 * lightest.throughput_rps

    # Utilization ramps monotonically toward saturation.
    utils = [p.utilization for p in curve.points]
    assert all(b >= a - 0.02 for a, b in zip(utils, utils[1:]))
    assert heaviest.utilization > 0.9
    assert lightest.utilization < 0.5
