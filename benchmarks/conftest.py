"""Shared fixtures for the figure/table benchmarks.

Workloads are built once per session and shared; set ``REPRO_BENCH_SCALE``
to change the workload scale (default 0.15 keeps the whole suite fast;
1.0 reproduces the repo's full default sizes).
"""

import os

import pytest

from repro.workloads.suite import WORKLOAD_BUILDERS, build_workload

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def workloads(bench_scale):
    """Every Table-2 workload, built once."""
    return {
        name: build_workload(name, scale=bench_scale)
        for name in WORKLOAD_BUILDERS
    }


def run_once(benchmark, fn, *args, **kwargs):
    """Time a single execution (experiments are deterministic)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
