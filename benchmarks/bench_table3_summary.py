"""Table 3 — evaluation summary (headline ratios across the suite)."""

from conftest import run_once

from repro.bench.summary import format_table3, run_summary


def test_table3_summary(benchmark, bench_scale):
    summary = run_once(benchmark, run_summary, scale=bench_scale)
    print()
    print(format_table3(summary))
    # The orderings the paper's Table 3 rests on.
    assert summary.ratios["stream"] > summary.ratios["xcache"] > 1.0
    assert summary.ratios["address"] > 0.9
    assert summary.energy_ratios["stream"] > 1.0
    lo, hi = summary.pattern_gain
    assert hi >= lo > 0.8
