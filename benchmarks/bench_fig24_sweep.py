"""Fig. 24 — design sweep over tile count and IX-cache size."""

from conftest import run_once

from repro.bench.sweep import format_fig24, pareto_point, run_sweep


def test_fig24_design_sweep(benchmark, workloads, bench_scale):
    cells = run_once(
        benchmark, run_sweep,
        workloads=("join", "spmm", "rtree"),
        tiles=(4, 8, 16),
        caches=(2 * 1024, 8 * 1024, 32 * 1024),
        scale=bench_scale,
        prebuilt=workloads,
    )
    print()
    print(format_fig24(cells))
    for name in ("join", "spmm", "rtree"):
        p = pareto_point(cells, name)
        print(f"Pareto {name}: {p.tiles} tiles, {p.cache_bytes // 1024}KB "
              f"-> {p.speedup:.2f}x ({p.region})")
    # More tiles at a fixed cache never slow the DSA down much, and the
    # sweep must contain at least two distinct limit regions.
    regions = {c.region for c in cells}
    assert len(regions) >= 2, regions
    by_key = {(c.workload, c.tiles, c.cache_bytes): c for c in cells}
    for name in ("join", "spmm"):
        low = by_key[(name, 4, 8 * 1024)].speedup
        high = by_key[(name, 16, 8 * 1024)].speedup
        assert high >= low * 0.95
