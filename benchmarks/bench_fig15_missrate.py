"""Fig. 15 — miss rate: METAL vs X-cache vs FA-OPT (+16x FA)."""

from conftest import run_once

from repro.bench.trends import format_fig15, run_trends


def test_fig15_miss_rate(benchmark, workloads, bench_scale):
    results = run_once(
        benchmark, run_trends, scale=bench_scale, prebuilt=workloads
    )
    print()
    print(format_fig15(results))
    for trend in results:
        rates = trend.miss_rates()
        # Observation 3: X-cache's leaf-only tagging misses most probes.
        assert rates["xcache"] > 0.3
        # The bigger FA cache can only lower the OPT miss rate.
        assert rates["fa_big"] <= rates["fa_opt"] + 1e-9
