"""Paper-scale sweep — streamed keygen + SoA storage up to 10M keys.

The full sweep (``python -m repro.bench.scale_sweep --write-baseline``)
commits BENCH_scale.json with the 1x point; the benchmark run keeps to
the CI fractions so it stays push-cheap while exercising the identical
path: tracemalloc-gated SoA build, fixed walk prefix, stream-vs-METAL
trend predicates, and drift check against the committed baseline.
"""

from conftest import run_once

from repro.bench.scale_sweep import (
    CI_POINTS,
    DEFAULT_BASELINE,
    check_against_baseline,
    check_trends,
    format_sweep,
    load_baseline,
    run_scale_sweep,
)


def test_scale_sweep_ci_points(benchmark):
    points = run_once(benchmark, run_scale_sweep, points=CI_POINTS)
    print()
    print(format_sweep(points))
    assert check_trends(points) == []
    baseline = load_baseline(DEFAULT_BASELINE)
    assert baseline is not None, f"{DEFAULT_BASELINE} must be committed"
    assert check_against_baseline(points, baseline) == []
    # The committed full sweep carries the paper-scale point and its
    # trends: 10M records built inside the declared budget, speedup
    # floor held from 0.01x through 1x.
    fracs = [p["frac"] for p in baseline["points"]]
    assert 1.0 in fracs and min(fracs) <= 0.01
    for p in baseline["points"]:
        assert p["build_peak_bytes"] <= p["budget_bytes"]
        assert p["speedup"] >= baseline["min_speedup"]
