"""The IX-cache as a page-walk cache (the paper's future-work extension).

"IX-cache generalizes the classical concept of guarded page tables and
translation caches. This paper targets DSAs, while CPU/GPU extensions are
future work." Here is that extension: an x86-style radix page table whose
table nodes carry virtual-address ranges as their [Lo, Hi] tags, so the
unmodified IX-cache short-circuits page walks — including skip-level
behaviour and TLB-shootdown-style invalidation.

    python examples/pagetable_walk.py
"""

from repro.indexes.pagetable import RadixPageTable
from repro.params import BLOCK_SIZE, CacheParams
from repro.sim.memsys import make_memsys
from repro.sim.metrics import WalkRequest, simulate
from repro.workloads.keygen import clustered_stream


def build_address_space() -> RadixPageTable:
    pt = RadixPageTable(levels=4, bits_per_level=7, page_bits=12)
    # A few mapped segments: code, heap, and a large mmap region.
    for page in range(0, 64):
        pt.map_page(page << 12)                      # code
    for page in range(1_000, 1_256):
        pt.map_page(page << 12)                      # heap
    for page in range(50_000, 52_048):
        pt.map_page(page << 12)                      # mmap
    return pt


def main() -> None:
    pt = build_address_space()
    print(f"{pt.levels}-level page table, {pt.va_bits}-bit VA space, "
          f"{pt.mapped_pages} pages mapped")
    pa = pt.translate((1_100 << 12) | 0x123)
    print(f"translate(heap+0x123) -> {pa:#x}\n")

    # Memory accesses cluster in the heap, drifting across the mmap region.
    pages = [1_000 + p for p in clustered_stream(256, 2_000, seed=3)] + [
        50_000 + p for p in clustered_stream(2_048, 2_000, seed=4)
    ]
    requests = [WalkRequest(pt, page << 12) for page in pages]

    print("Page-walk traffic by memory system:")
    results = {}
    for kind in ("stream", "address", "metal_ix"):
        ms = make_memsys(
            kind, cache_params=CacheParams(capacity_bytes=64 * BLOCK_SIZE)
        )
        results[kind] = simulate(ms, requests, ms.sim)
    base = results["stream"].makespan
    for name, run in results.items():
        label = {"stream": "no walk cache", "address": "page-walk $ (addr)",
                 "metal_ix": "IX-cache"}[name]
        print(f"  {label:20s} {base / run.makespan:5.2f}x  "
              f"avg walk {run.avg_walk_latency:6.1f} cycles  "
              f"DRAM {run.dram.accesses}")

    # Shootdown: unmapping invalidates the cached translation path.
    ms = make_memsys("metal_ix", cache_params=CacheParams(capacity_bytes=64 * BLOCK_SIZE))
    vaddr = 1_100 << 12
    ms.process_walk(pt, vaddr)
    warm = ms.process_walk(pt, vaddr)
    pt.unmap_page(vaddr)
    after = ms.process_walk(pt, vaddr)
    print(f"\nshootdown: warm walk visited {warm.nodes_visited} nodes, "
          f"post-unmap walk re-fetched {after.nodes_visited} "
          f"(translation gone: {pt.translate(vaddr)})")


if __name__ == "__main__":
    main()
