"""Writing a custom reuse descriptor.

METAL's descriptors are an open interface: anything that can decide
insert-or-bypass from affine index features (level, range) and tune itself
from batch feedback can manage the IX-cache. This example builds a
*hot-range* descriptor that caches only nodes inside an application-known
hot key range — a pattern a database could derive from its query planner —
and compares it against the built-ins on a skewed scan.

    python examples/custom_pattern.py
"""

from repro import LevelDescriptor, build_workload
from repro.bench.runner import run_workload
from repro.core.descriptors import (
    BYPASS,
    BatchFeedback,
    INSERT_ALL,
    InsertDecision,
    ReuseDescriptor,
    WalkContext,
)
from repro.indexes.base import IndexNode


class HotRangeDescriptor(ReuseDescriptor):
    """Cache any node whose range intersects a known-hot key interval.

    Tuning widens the interval while hits hold and shrinks it back when
    the hit rate decays (the cluster drifted).
    """

    def __init__(self, lo: int, hi: int, grow: float = 1.25) -> None:
        if lo > hi:
            raise ValueError("lo must be <= hi")
        self.lo = lo
        self.hi = hi
        self.grow = grow

    def decide(
        self, node: IndexNode, height: int, ctx: WalkContext | None = None
    ) -> InsertDecision:
        if node.lo is None or node.hi is None:
            return BYPASS
        if node.hi < self.lo or node.lo > self.hi:
            return BYPASS
        return INSERT_ALL

    def tune(self, feedback: BatchFeedback) -> None:
        width = self.hi - self.lo
        center = (self.hi + self.lo) // 2
        if feedback.hit_rate > 0.6 and feedback.occupancy < 0.9:
            width = int(width * self.grow)
        elif feedback.hit_rate < 0.2:
            width = max(16, int(width / self.grow))
        self.lo = center - width // 2
        self.hi = center + width // 2

    def describe(self) -> dict:
        return {"pattern": "hot-range", "lo": self.lo, "hi": self.hi}


def main() -> None:
    workload = build_workload("scan", scale=0.15)
    num_records = int(workload.notes.split()[0])
    height = workload.indexes[0].height

    print(f"scan over {num_records} records, {height} levels\n")
    contenders = {
        "hot-range (custom)": HotRangeDescriptor(0, num_records // 4),
        "level band (built-in)": LevelDescriptor(
            0, height - 1, min_level=0, low_utility=0.5
        ),
    }
    baseline = run_workload(workload, "stream")
    print(f"{'descriptor':24s} {'speedup':>8s} {'hit rate':>9s}")
    for name, descriptor in contenders.items():
        run = run_workload(workload, "metal", descriptors=descriptor)
        hit_rate = run.cache_stats.hit_rate if run.cache_stats else 0.0
        print(f"{name:24s} {baseline.makespan / run.makespan:7.2f}x "
              f"{hit_rate:9.2f}")
    print("\nAny ReuseDescriptor subclass plugs into Metal(...), the")
    print("PatternController, and the whole bench harness unchanged.")


if __name__ == "__main__":
    main()
