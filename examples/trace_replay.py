"""Capture a workload's walk trace, then replay it across configurations.

Trace I/O decouples *what the application does* from *what hardware runs
it*: capture once (or bring a trace from a real system), then sweep cache
geometries offline. This is how the paper-style design sweeps (Fig. 24)
would be driven from production traces.

    python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro.bench.runner import build_memsys
from repro.sim.metrics import simulate
from repro.workloads.suite import build_workload
from repro.workloads.trace_io import load_trace, save_trace, workload_index_names


def main() -> None:
    workload = build_workload("join", scale=0.1)
    names = workload_index_names(workload)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "join_trace.jsonl"
        written = save_trace(path, workload.requests, names)
        print(f"captured {written} walk requests -> {path.name} "
              f"({path.stat().st_size // 1024} KiB)\n")

        # Re-bind the trace to the live indexes and sweep cache sizes.
        rebind = {name: index for index, name in
                  ((i, names[id(i)]) for i in workload.indexes)}
        requests = load_trace(path, rebind)

        print(f"{'cache':>7s} {'makespan':>10s} {'avg walk':>9s} {'miss':>6s}")
        for kb in (2, 4, 8, 16, 32):
            memsys = build_memsys("metal", workload, cache_bytes=kb * 1024)
            run = simulate(memsys, requests, memsys.sim,
                           workload.total_index_blocks)
            print(f"{kb:>5d}KB {run.makespan:>10d} "
                  f"{run.avg_walk_latency:>9.1f} {run.miss_rate:>6.2f}")

    print("\nThe same trace file replays against any memory system,")
    print("geometry, or descriptor set — no workload rebuild needed.")


if __name__ == "__main__":
    main()
