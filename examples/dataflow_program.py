"""The declarative front-end: build a dataflow program, lower, simulate.

Fig. 14's toolflow lowers high-level programs onto the tile grid; the
`repro.dsa.compiler` module is that layer. You describe *what* to compute
(lookups, joins, SpMM) and the lowering derives the walk-request stream,
the reuse descriptors Table 2 prescribes per operator kind, and a tile
placement — then any memory system can execute it.

    python examples/dataflow_program.py
"""

from repro.dsa.compiler import DataflowProgram, lower
from repro.dsa.gorgon import ANALYTICS_CONFIG
from repro.indexes.table import RecordTable
from repro.params import CacheParams, IXCACHE_ENERGY_FJ
from repro.sim.memsys import make_memsys
from repro.sim.metrics import simulate
from repro.workloads.keygen import zipf_stream


def main() -> None:
    # A small star schema: facts reference a dimension table.
    dimension = RecordTable.from_records(
        ("id", "category"), "id",
        ({"id": d, "category": d % 11} for d in range(6_000)),
        fanout=3,
    )
    fks = zipf_stream(6_000, 1_500, skew=0.9, seed=31)
    facts = RecordTable.from_records(
        ("id", "dim_id", "amount"), "id",
        ({"id": f, "dim_id": fk, "amount": f % 97} for f, fk in enumerate(fks)),
    )

    # Describe the computation declaratively.
    program = DataflowProgram(ANALYTICS_CONFIG)
    program.join(facts, dimension, "dim_id")
    program.select(dimension, [(100, 140), (2_000, 2_040)])
    program.lookup(dimension, zipf_stream(6_000, 500, skew=0.9, seed=32))

    lowered = lower(program)
    print(f"{len(program.operators)} operators -> {len(lowered.requests)} "
          f"walk requests over {len(lowered.indexes)} indexes")
    print("placement:", lowered.placement)
    print("patterns:", lowered.pattern_summary, "\n")

    # Execute under METAL and under the streaming baseline.
    results = {}
    for kind in ("stream", "metal"):
        kwargs = {}
        if kind == "metal":
            kwargs["descriptors"] = lowered.descriptors
            kwargs["cache_params"] = CacheParams(
                capacity_bytes=8 * 1024, e_access=IXCACHE_ENERGY_FJ
            )
        ms = make_memsys(kind, **kwargs)
        results[kind] = simulate(ms, lowered.requests, ms.sim)
    base = results["stream"].makespan
    for name, run in results.items():
        print(f"  {name:8s} {base / run.makespan:5.2f}x  "
              f"short-circuited {run.short_circuited}/{run.num_walks}")


if __name__ == "__main__":
    main()
