"""Spatial analysis on Aurochs: R-tree quadrilateral embedding (§4.3).

Random x coordinates walk the x-tree; the correlated y keys then scan the
y-tree, and "the reuse tends to be along certain tree sub-branches" — the
Branch descriptor tracks the moving key cluster with its median pivot.

    python examples/spatial_queries.py
"""

from repro import BranchDescriptor, CompositeDescriptor, LevelDescriptor
from repro.dsa.aurochs import Aurochs, RTREE_CONFIG
from repro.indexes.rtree import Rect, RTree2D
from repro.params import CacheParams
from repro.sim.memsys import make_memsys
from repro.sim.metrics import simulate
from repro.workloads.keygen import clustered_stream
from repro.workloads.spatial import clustered_rects


def spatial_semantics() -> None:
    print("=== Spatial query semantics ===")
    rects = [
        Rect(0, 0, 10, 0, 10),
        Rect(1, 5, 20, 5, 25),
        Rect(2, 100, 110, 100, 120),
    ]
    rtree = RTree2D(rects)
    hits = rtree.query_point(7, 7)
    print(f"point (7,7) inside rects: {[r.rect_id for r in hits]}")
    window = Rect(99, 0, 12, 0, 12)
    overlapping = rtree.query_window(window)
    print(f"window [0..12]^2 intersects: {[r.rect_id for r in overlapping]}\n")


def simulated_embedding() -> None:
    print("=== Simulated quadrilateral embedding ===")
    rects = clustered_rects(6_000, universe=1 << 20, seed=21)
    rtree = RTree2D(rects, x_fanout=3, y_fanout=3)
    print(f"x-tree: {rtree.x_tree.height} levels, "
          f"y-tree: {rtree.y_tree.height} levels, {len(rtree)} rects")

    xs = sorted({r.x_lo for r in rects})
    query_idx = clustered_stream(len(xs), 800, num_clusters=5, seed=22)
    aurochs = Aurochs(RTREE_CONFIG)
    requests = aurochs.rtree_requests(rtree, [xs[i] for i in query_idx])
    print(f"{len(requests)} walks (x-tree + correlated y-tree scans)")

    sim = aurochs.config.sim_params()
    params = CacheParams(capacity_bytes=8 * 1024)
    results = {}
    for kind in ("stream", "address", "xcache"):
        ms = make_memsys(kind, sim, params)
        results[kind] = simulate(ms, requests, sim)

    # Table 2's RTree pattern: Level on the x-tree, Branch on the y-tree.
    xh, yh = rtree.x_tree.height, rtree.y_tree.height
    descriptors = {
        rtree.x_tree.index_id: LevelDescriptor(0, xh - 1, min_level=0),
        rtree.y_tree.index_id: CompositeDescriptor([
            BranchDescriptor(depth=yh - 1, window=256),
            LevelDescriptor(0, yh - 1, min_level=0),
        ]),
    }
    ms = make_memsys("metal", sim, params, descriptors=descriptors,
                     key_block_bits=8)
    results["metal"] = simulate(ms, requests, sim)

    base = results["stream"].makespan
    for name, run in results.items():
        print(f"  {name:8s} {base / run.makespan:5.2f}x  "
              f"avg walk {run.avg_walk_latency:7.1f} cycles")

    branch = descriptors[rtree.y_tree.index_id].members[0]
    print(f"\nBranch descriptor settled: pivot={branch.pivot}, "
          f"depth={branch.depth}")


if __name__ == "__main__":
    spatial_semantics()
    simulated_embedding()
