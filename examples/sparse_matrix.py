"""SpMM on Capstan: dynamic sparse tensors, fibers, and the Node pattern.

Shows the paper's Fig. 10 scenario: matrix B's nonzero columns behind a
B+tree coordinate index, probed by an inner product. The Node descriptor
pins hot column leaves for the burst of accesses they receive ("life is
set to the number of non-zeros in each column"), and the shallow fiber
variant shows why '-S' workloads gain less.

    python examples/sparse_matrix.py
"""

from repro import CompositeDescriptor, LevelDescriptor, NodeDescriptor
from repro.dsa.capstan import Capstan, SPMM_CONFIG
from repro.indexes.fiber import FiberMatrix
from repro.indexes.sparse_tensor import DynamicSparseTensor
from repro.params import CacheParams
from repro.sim.memsys import make_memsys
from repro.sim.metrics import simulate
from repro.workloads.matrices import inner_product_rows, powerlaw_coo


def build_b(dim: int = 2_048, nnz: int = 15_000, deep: bool = True):
    triples = powerlaw_coo((dim, dim), nnz, col_skew=0.9, seed=11)
    if deep:
        return DynamicSparseTensor.from_coo((dim, dim), triples, fanout=3)
    return FiberMatrix((dim, dim), triples)


def functional_check() -> None:
    print("=== Functional SpMM check (small) ===")
    b = DynamicSparseTensor.from_coo(
        (4, 4), [(0, 0, 2.0), (1, 1, 3.0), (0, 1, 1.0)]
    )
    a_rows = [[(0, 1.0)], [(0, 2.0), (1, 1.0)]]
    out = Capstan.spmm(a_rows, b, 4)
    print(f"C rows: {out}")

    # Dynamic updates grow the same index in place.
    b.set(3, 3, 9.0)
    print(f"after dynamic insert, B[3,3] = {b.get(3, 3)}, nnz = {b.nnz}\n")


def simulated_spmm(deep: bool) -> None:
    label = "deep dynamic tensor" if deep else "shallow fibers (-S)"
    print(f"=== Simulated SpMM over {label} ===")
    b = build_b(deep=deep)
    a_rows = inner_product_rows(600, 12, 2_048, bandwidth=96, seed=12)
    capstan = Capstan(SPMM_CONFIG)
    requests = capstan.spmm_requests(a_rows, b)
    print(f"B index: {b.height} levels, {b.nnz} nonzeros; "
          f"{len(requests)} coordinate walks")

    sim = capstan.config.sim_params()
    params = CacheParams(capacity_bytes=8 * 1024)
    results = {}
    for kind in ("stream", "xcache"):
        ms = make_memsys(kind, sim, params)
        results[kind] = simulate(ms, requests, sim)

    # The paper's SpMM pattern: leaf lifetime pinning over a sweep band.
    descriptor = CompositeDescriptor([
        NodeDescriptor(target="leaf", life=2),
        LevelDescriptor(0, b.height - 1, min_level=0, min_touches=1,
                        frontier=False),
    ])
    ms = make_memsys("metal", sim, params, descriptors=descriptor,
                     key_block_bits=4)
    results["metal"] = simulate(ms, requests, sim)

    base = results["stream"].makespan
    for name, run in results.items():
        print(f"  {name:8s} {base / run.makespan:6.2f}x  "
              f"working set {run.working_set_fraction:.2f}  "
              f"full short-circuits {run.full_hits}")
    print()


if __name__ == "__main__":
    functional_check()
    simulated_spmm(deep=True)
    simulated_spmm(deep=False)
