"""Database analytics on Gorgon: SELECT / WHERE / JOIN with METAL.

Reproduces the workflow of the paper's analytics workloads (Section 5,
Table 2): relational tables behind B+tree primary indexes, declarative
operators lowered to walk requests, and the Level reuse pattern managing
the shared IX-cache across *both* trees of a join.

    python examples/database_analytics.py
"""

from repro import LevelDescriptor, compare_systems
from repro.bench.runner import run_workload
from repro.dsa.gorgon import ANALYTICS_CONFIG, Gorgon
from repro.indexes.table import RecordTable
from repro.workloads.keygen import zipf_stream
from repro.workloads.suite import build_analytics_join


def build_tables() -> tuple[RecordTable, RecordTable]:
    """An orders table joined against a customers table."""
    customers = RecordTable.from_records(
        ("id", "region", "tier"),
        "id",
        (
            {"id": c, "region": c % 17, "tier": c % 3}
            for c in range(8_000)
        ),
        fanout=3,  # deep index, like Table 2's degree-5/depth-10 setup
    )
    fks = zipf_stream(8_000, 3_000, skew=0.9, seed=7)
    orders = RecordTable.from_records(
        ("id", "customer", "amount"),
        "id",
        (
            {"id": o, "customer": fk, "amount": (o * 37) % 500}
            for o, fk in enumerate(fks)
        ),
    )
    return orders, customers


def functional_queries(orders: RecordTable, customers: RecordTable) -> None:
    print("=== Functional semantics ===")
    rich = [r for r in orders.where(lambda r: r["amount"] > 450)]
    print(f"WHERE amount > 450: {len(rich)} orders")

    window = list(customers.select_range(100, 120))
    print(f"SELECT customers BETWEEN 100 AND 120: {len(window)} rows")

    joined = list(orders.join(customers, "customer"))
    print(f"JOIN orders x customers: {len(joined)} pairs")
    sample_order, sample_customer = joined[0]
    print(f"  e.g. order {sample_order['id']} -> customer "
          f"{sample_customer['id']} (region {sample_customer['region']})\n")


def simulated_join(orders: RecordTable, customers: RecordTable) -> None:
    """Time the join's index traffic under different cache organizations."""
    print("=== Simulated JOIN walk traffic ===")
    gorgon = Gorgon(ANALYTICS_CONFIG)
    requests = gorgon.join_requests(orders, customers, "customer")
    print(f"{len(requests)} inner-index probes, customers index "
          f"{customers.height} levels deep")

    from repro.sim.metrics import simulate
    from repro.sim.memsys import make_memsys
    from repro.params import CacheParams

    sim = gorgon.config.sim_params()
    results = {}
    for kind in ("stream", "address", "xcache"):
        ms = make_memsys(kind, sim, CacheParams(capacity_bytes=8 * 1024))
        results[kind] = simulate(ms, requests, sim)
    descriptor = LevelDescriptor(0, customers.height - 1, min_level=0)
    ms = make_memsys("metal", sim, CacheParams(capacity_bytes=8 * 1024),
                     descriptors=descriptor)
    results["metal"] = simulate(ms, requests, sim)

    base = results["stream"].makespan
    for name, run in results.items():
        print(f"  {name:8s} {base / run.makespan:5.2f}x  "
              f"avg walk {run.avg_walk_latency:7.1f} cycles  "
              f"DRAM accesses {run.dram.accesses}")
    print()


def packaged_workload() -> None:
    """The same experiment through the packaged Table-2 JOIN workload."""
    print("=== Packaged JOIN workload (both trees shared in one IX-cache) ===")
    workload = build_analytics_join(scale=0.15)
    results = compare_systems(workload, kinds=("stream", "address", "metal"))
    base = results["stream"].makespan
    for name, run in results.items():
        print(f"  {name:8s} {base / run.makespan:5.2f}x")
    metal = run_workload(workload, "metal")
    print(f"  METAL short-circuited {metal.short_circuited} of "
          f"{metal.num_walks} walks "
          f"({metal.full_hits} complete short-circuits)")


if __name__ == "__main__":
    orders, customers = build_tables()
    functional_queries(orders, customers)
    simulated_join(orders, customers)
    packaged_workload()
