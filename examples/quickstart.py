"""Quickstart: put an IX-cache in front of an index and measure it.

Builds a deep B+tree, runs Zipfian point lookups through every memory
organization the paper compares, and prints speedups, miss rates, and the
working-set reduction. Runs in a few seconds.

    python examples/quickstart.py
"""

from repro import (
    BPlusTree,
    CacheParams,
    IXCache,
    LevelDescriptor,
    Metal,
    build_workload,
    compare_systems,
)


def direct_cache_usage() -> None:
    """The low-level API: probe and fill an IX-cache by hand."""
    print("=== Direct IX-cache usage ===")
    tree = BPlusTree.bulk_load([(k, k * 10) for k in range(10_000)], fanout=4)
    print(f"B+tree: {len(tree)} keys, {tree.height} levels")

    cache = IXCache(CacheParams(capacity_bytes=8 * 1024))
    key = 4_242

    # Cold probe: nothing cached yet.
    assert cache.probe(key) is None

    # Walk the index root-to-leaf; insert the mid-level nodes.
    path = tree.walk(key)
    for node in path[2:6]:
        cache.insert(node)

    # A second probe short-circuits to the deepest cached covering node.
    start = cache.probe(key)
    assert start is not None
    remaining = tree.walk_from(start, key)
    print(
        f"probe({key}) -> level {start.level} node [{start.lo}..{start.hi}]; "
        f"walk shortened from {len(path)} to {len(remaining)} nodes"
    )

    # The same cache, managed by a reuse pattern instead.
    metal = Metal(LevelDescriptor(1, tree.height - 1))
    ns = lambda k: k  # noqa: E731 - single index, no namespacing needed
    metal.begin_walk(0, key)
    for node in tree.walk(key):
        metal.consider(0, node, tree.height, ns)
    metal.end_walk()
    print(f"pattern-managed cache now holds {len(metal.cache)} entries\n")


def system_comparison() -> None:
    """The high-level API: a Table-2 workload across every organization."""
    print("=== Scan workload, all memory systems (scaled down) ===")
    workload = build_workload("scan", scale=0.15)
    print(f"workload: {workload.notes}")
    results = compare_systems(workload)

    base = results["stream"].makespan
    header = f"{'system':10s} {'speedup':>8s} {'miss':>6s} {'working set':>12s} {'DRAM nJ':>9s}"
    print(header)
    print("-" * len(header))
    for name, run in results.items():
        print(
            f"{name:10s} {base / run.makespan:7.2f}x {run.miss_rate:6.2f} "
            f"{run.working_set_fraction:12.2f} {run.dram_energy_fj / 1e6:9.1f}"
        )
    metal, xcache = results["metal"], results["xcache"]
    print(
        f"\nMETAL vs X-cache: {xcache.makespan / metal.makespan:.2f}x faster, "
        f"working set {metal.working_set_fraction:.2f} vs "
        f"{xcache.working_set_fraction:.2f}"
    )


if __name__ == "__main__":
    direct_cache_usage()
    system_comparison()
